// Prometheus text-format parsing — the consumer side of the registry.
// The router tier federates its shards' /metrics into one cluster view
// (rr_cluster_* families) and rrtop turns scrapes into a dashboard;
// both need to read back exactly the exposition WritePrometheus
// renders, so the parser lives next to the writer and is tested as its
// round-trip inverse.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set
// and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label's value, "" when absent.
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseProm parses a Prometheus text-format exposition (version 0.0.4,
// the dialect WritePrometheus emits). Comment and blank lines are
// skipped; malformed sample lines fail the whole parse, since a
// truncated scrape must not masquerade as a small one.
func ParseProm(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: reading exposition: %w", err)
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	// name{labels} value  |  name value
	var name, labels, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return Sample{}, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return Sample{}, fmt.Errorf("no value in %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	// A timestamp may trail the value; keep the first field only.
	if f := strings.Fields(rest); len(f) > 0 {
		rest = f[0]
	}
	if name == "" || rest == "" {
		return Sample{}, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return Sample{}, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s := Sample{Name: name, Value: v}
	if labels != "" {
		s.Labels, err = parseLabels(labels)
		if err != nil {
			return Sample{}, fmt.Errorf("bad labels in %q: %v", line, err)
		}
	}
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("no '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted value for %q", key)
		}
		val, rest, err := unquoteLabel(s)
		if err != nil {
			return nil, err
		}
		out[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// unquoteLabel consumes a leading double-quoted string with \" \\ \n
// escapes and returns the value plus the remainder.
func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value in %q", s)
}

// Buckets is a cumulative le-bucket set, the parsed form of one
// histogram (or several merged ones). Keys are the `le` upper bounds
// with +Inf included; values are cumulative observation counts.
type Buckets map[float64]float64

// AddBucket accumulates one `_bucket` sample into the set; merging a
// second histogram into the same Buckets sums cumulative counts
// bound-for-bound, which is exact when the sources share a bucket
// layout (all registry histograms of one family do).
func (b Buckets) AddBucket(le string, cum float64) error {
	bound, err := parseValue(le)
	if err != nil {
		return fmt.Errorf("metrics: bad le %q: %v", le, err)
	}
	b[bound] += cum
	return nil
}

// Count returns the total observation count (the +Inf bucket).
func (b Buckets) Count() float64 { return b[math.Inf(1)] }

// Quantile estimates the q-quantile by linear interpolation within the
// holding bucket — the same estimate Histogram.Quantile computes over
// live buckets, now over scraped (and possibly merged) ones. Returns 0
// with no observations; the +Inf bucket clamps to the highest finite
// bound.
func (b Buckets) Quantile(q float64) float64 {
	bounds := make([]float64, 0, len(b))
	for bound := range b {
		if !math.IsInf(bound, 1) {
			bounds = append(bounds, bound)
		}
	}
	sort.Float64s(bounds)
	total := b.Count()
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	var prevCum, prevBound float64
	for _, bound := range bounds {
		cum := b[bound]
		if cum >= rank && cum > prevCum {
			frac := (rank - prevCum) / (cum - prevCum)
			return prevBound + (bound-prevBound)*frac
		}
		prevCum, prevBound = cum, bound
	}
	return bounds[len(bounds)-1]
}

// HistogramBuckets extracts the named histogram's buckets from a
// parsed scrape, keeping only samples whose labels match the given
// filter (nil matches all). The `le` label itself is not part of the
// filter.
func HistogramBuckets(samples []Sample, name string, filter map[string]string) (Buckets, error) {
	b := make(Buckets)
	for _, s := range samples {
		if s.Name != name+"_bucket" || !labelsMatch(s.Labels, filter) {
			continue
		}
		if err := b.AddBucket(s.Label("le"), s.Value); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Value returns the first sample matching name and filter, with ok
// reporting whether one was found.
func Value(samples []Sample, name string, filter map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name && labelsMatch(s.Labels, filter) {
			return s.Value, true
		}
	}
	return 0, false
}

func labelsMatch(labels, filter map[string]string) bool {
	for k, v := range filter {
		if labels[k] != v {
			return false
		}
	}
	return true
}
