// Package metrics is a dependency-free metrics toolkit for the serving
// subsystem: atomic counters, gauges and fixed-bucket histograms that a
// Registry renders in the Prometheus text exposition format (version
// 0.0.4). Everything is safe for concurrent use; observation paths are
// single atomic operations so instrumenting a hot path costs
// nanoseconds.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative for Prometheus semantics.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is an integer metric that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed cumulative buckets and
// tracks their sum, Prometheus histogram style. Buckets are chosen at
// construction; observations are two atomic adds plus one CAS loop for
// the float sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefBuckets is a latency-oriented default: 10µs to ~10s in decades,
// expressed in seconds.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the given ascending upper
// bounds; nil selects DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1), // last = +Inf
	}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket that holds it — the same estimate Prometheus's
// histogram_quantile computes server-side. It returns 0 with no
// observations; the top bucket is clamped to its lower bound since +Inf
// cannot be interpolated.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one registered name; exactly one of the typed fields is set.
type metric struct {
	name string // may carry a {label="..."} suffix
	help string
	typ  string // counter, gauge, histogram
	c    *Counter
	g    *Gauge
	h    *Histogram
	gf   func() float64
	cf   func() int64
}

// A Registry holds named metrics and renders them. Registration is
// expected at setup time; rendering may race with observations, which
// is fine — atomics give a consistent-enough scrape.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// baseName strips a {label} suffix for HELP/TYPE headers.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter registers and returns a counter. The name may embed a
// constant label set, e.g. `rr_queries_total{endpoint="query"}`.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, help: help, typ: "counter", c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name: name, help: help, typ: "gauge", g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the natural shape for runtime stats (goroutine count, heap
// size) that would otherwise need a background updater. fn must be safe
// for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(metric{name: name, help: help, typ: "gauge", gf: fn})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic counts maintained elsewhere (e.g. the planner's
// per-member routing tallies). fn must be safe for concurrent calls and
// must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(metric{name: name, help: help, typ: "counter", cf: fn})
}

// Histogram registers and returns a histogram over the given bounds
// (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(metric{name: name, help: help, typ: "histogram", h: h})
	return h
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.metrics {
		if existing.name == m.name {
			panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name))
		}
	}
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered metric in the text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()

	var b strings.Builder
	seenHeader := make(map[string]bool)
	for _, m := range ms {
		base := baseName(m.name)
		if !seenHeader[base] {
			seenHeader[base] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", base, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, m.typ)
		}
		switch {
		case m.c != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.g.Value())
		case m.gf != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, strconv.FormatFloat(m.gf(), 'g', -1, 64))
		case m.cf != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.cf())
		case m.h != nil:
			writeHistogram(&b, m.name, m.h)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders cumulative buckets plus _sum and _count,
// splicing the le label into any existing label set.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	bucketName := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le=%q}`, base, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le=%q}`, base, labels, le)
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return base + suffix
		}
		return base + suffix + "{" + labels + "}"
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s %d\n", bucketName(formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", bucketName("+Inf"), cum)
	fmt.Fprintf(b, "%s %s\n", suffixed("_sum"), strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s %d\n", suffixed("_count"), h.Count())
}

func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
