package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rr_test_total", "test counter")
	g := r.Gauge("rr_test_inflight", "test gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Inc()
	g.Dec()
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rr_test_total counter",
		"rr_test_total 5",
		"# TYPE rr_test_inflight gauge",
		"rr_test_inflight 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("rr_test_dynamic", "scrape-time gauge", func() float64 { return v })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rr_test_dynamic 1.5") {
		t.Errorf("output missing computed value:\n%s", b.String())
	}
	// The function is re-evaluated per scrape, not captured once.
	v = 3
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rr_test_dynamic 3") {
		t.Errorf("output not re-evaluated:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "# TYPE rr_test_dynamic gauge") {
		t.Errorf("missing TYPE header:\n%s", b.String())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for i := 0; i < 50; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05) // second bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // +Inf bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 50*0.005 + 40*0.05 + 10*5.0
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	// Median lands in the first bucket (50 of 100 observations ≤ 0.01).
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Errorf("p50 = %g, want in (0, 0.01]", q)
	}
	// p90 exhausts the second bucket exactly.
	if q := h.Quantile(0.9); math.Abs(q-0.1) > 1e-9 {
		t.Errorf("p90 = %g, want 0.1", q)
	}
	// p99 is in the +Inf bucket: clamped to the top finite bound.
	if q := h.Quantile(0.99); q != 1 {
		t.Errorf("p99 = %g, want 1 (clamp)", q)
	}
	if q := h.Quantile(0.5); q != h.Quantile(0.5) {
		t.Errorf("quantile not deterministic")
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`rr_query_seconds{mode="static"}`, "latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rr_query_seconds histogram",
		`rr_query_seconds_bucket{mode="static",le="0.01"} 1`,
		`rr_query_seconds_bucket{mode="static",le="0.1"} 2`,
		`rr_query_seconds_bucket{mode="static",le="+Inf"} 3`,
		`rr_query_seconds_count{mode="static"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSharedHeaderForLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(`rr_reqs_total{endpoint="query"}`, "requests").Inc()
	r.Counter(`rr_reqs_total{endpoint="batch"}`, "requests").Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE rr_reqs_total counter"); got != 1 {
		t.Errorf("TYPE header rendered %d times, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, `rr_reqs_total{endpoint="query"} 1`) ||
		!strings.Contains(out, `rr_reqs_total{endpoint="batch"} 2`) {
		t.Errorf("labeled series missing:\n%s", out)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rr_c_total", "c")
	h := r.Histogram("rr_h_seconds", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Fatalf("histogram sum = %g, want 8", h.Sum())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r := NewRegistry()
	r.Counter("dup_total", "a")
	r.Counter("dup_total", "b")
}
