package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestParsePromRoundTrip: the parser is the inverse of WritePrometheus
// — every counter, gauge and histogram bucket a registry renders comes
// back with the same name, labels and value.
func TestParsePromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(`rr_requests_total{endpoint="query"}`, "requests")
	c.Add(42)
	g := reg.Gauge("rr_inflight", "in flight")
	g.Set(7)
	reg.GaugeFunc("rr_ratio", "ratio", func() float64 { return 0.25 })
	h := reg.Histogram(`rr_lat_seconds{shard="3"}`, "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parsing own exposition: %v\n%s", err, b.String())
	}

	if v, ok := Value(samples, "rr_requests_total", map[string]string{"endpoint": "query"}); !ok || v != 42 {
		t.Errorf("counter: got (%v, %v)", v, ok)
	}
	if v, ok := Value(samples, "rr_inflight", nil); !ok || v != 7 {
		t.Errorf("gauge: got (%v, %v)", v, ok)
	}
	if v, ok := Value(samples, "rr_ratio", nil); !ok || v != 0.25 {
		t.Errorf("gauge func: got (%v, %v)", v, ok)
	}
	if v, ok := Value(samples, "rr_lat_seconds_count", map[string]string{"shard": "3"}); !ok || v != 3 {
		t.Errorf("histogram count: got (%v, %v)", v, ok)
	}
	buckets, err := HistogramBuckets(samples, "rr_lat_seconds", map[string]string{"shard": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if buckets.Count() != 3 {
		t.Errorf("bucket count: got %v, want 3", buckets.Count())
	}
	if got := buckets[0.1]; got != 2 {
		t.Errorf("le=0.1 cumulative: got %v, want 2", got)
	}
	if got := buckets[math.Inf(1)]; got != 3 {
		t.Errorf("le=+Inf cumulative: got %v, want 3", got)
	}
}

// TestBucketsQuantileMatchesHistogram: the scraped-side quantile
// estimate agrees with the live Histogram.Quantile over the same
// observations.
func TestBucketsQuantileMatchesHistogram(t *testing.T) {
	h := NewHistogram(nil)
	obs := []float64{0.0001, 0.0004, 0.002, 0.002, 0.015, 0.08, 0.4, 1.2}
	for _, x := range obs {
		h.Observe(x)
	}
	reg := NewRegistry()
	h2 := reg.Histogram("rr_q_seconds", "q", nil)
	for _, x := range obs {
		h2.Observe(x)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	buckets, err := HistogramBuckets(samples, "rr_q_seconds", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		live, scraped := h.Quantile(q), buckets.Quantile(q)
		if math.Abs(live-scraped) > 1e-9 {
			t.Errorf("q=%v: live %v vs scraped %v", q, live, scraped)
		}
	}
}

// TestBucketsMerge: merging two shards' histograms sums cumulative
// counts bound-for-bound, and the merged quantile equals the quantile
// of one histogram fed both observation sets.
func TestBucketsMerge(t *testing.T) {
	mkScrape := func(obs []float64) []Sample {
		reg := NewRegistry()
		h := reg.Histogram("rr_q_seconds", "q", nil)
		for _, x := range obs {
			h.Observe(x)
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		samples, err := ParseProm(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	shard0 := []float64{0.001, 0.003, 0.02}
	shard1 := []float64{0.0002, 0.07, 0.7, 2}

	merged := make(Buckets)
	for _, samples := range [][]Sample{mkScrape(shard0), mkScrape(shard1)} {
		b, err := HistogramBuckets(samples, "rr_q_seconds", nil)
		if err != nil {
			t.Fatal(err)
		}
		for bound, cum := range b {
			merged[bound] += cum
		}
	}

	oracle := NewHistogram(nil)
	for _, x := range append(append([]float64{}, shard0...), shard1...) {
		oracle.Observe(x)
	}
	if merged.Count() != 7 {
		t.Fatalf("merged count %v, want 7", merged.Count())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := merged.Quantile(q), oracle.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("merged q=%v: got %v, want %v", q, got, want)
		}
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"rr_x",                      // no value
		"rr_x{le=\"0.1\" 3",         // unterminated labels
		"rr_x{le=0.1} 3",            // unquoted label value
		"rr_x{le=\"0.1\"} notanum",  // bad value
		"rr_x{le=\"0.1} 3",          // unterminated quote
		"rr_x{} }",                  // garbage value
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q) succeeded", bad)
		}
	}
	// Special values parse.
	samples, err := ParseProm(strings.NewReader("rr_bucket{le=\"+Inf\"} 5\nrr_nan NaN\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || !math.IsNaN(samples[1].Value) {
		t.Fatalf("special values: %+v", samples)
	}
}
