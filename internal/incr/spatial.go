package incr

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// patchVenue installs venue v's current entry — its geometry at
// z = post(comp(v)) — without touching the immutable base tree. A
// venue already in the overlay is replaced in its slot (snapshots copy
// the overlay by value, so in-place replacement by the single writer
// is safe); a venue whose entry lives in the base gets a tombstone
// there and a fresh overlay entry. When overlay plus tombstones grow
// past the fold threshold, everything is folded into a new base.
func (x *Index) patchVenue(v int32) {
	z := float64(x.post[x.comp[v]])
	entry := rtree.Entry[geom.Box3]{
		Box: geom.Box3FromRect(x.geo[v], z, z),
		ID:  v,
	}
	if i, ok := x.overlayIdx[v]; ok {
		x.overlay[i] = entry
	} else {
		if x.overlayIdx == nil {
			x.overlayIdx = make(map[int32]int)
		}
		x.overlayIdx[v] = len(x.overlay)
		x.overlay = append(x.overlay, entry)
		if x.inBase[v] {
			if x.stale == nil {
				x.stale = make(map[int32]struct{})
			}
			x.stale[v] = struct{}{}
		}
	}
	x.maybeFold()
}

// maybeFold bounds the patch structures: once the overlay scan plus
// tombstone lookups would cost more than an eighth of a fresh base's
// entries, fold. Below OverlayMin the base is never rebuilt, keeping
// small-churn workloads allocation-light.
func (x *Index) maybeFold() {
	pending := len(x.overlay) + len(x.stale)
	if pending >= x.opts.OverlayMin && pending*8 >= x.base.Len()+len(x.overlay) {
		x.foldBase()
	}
}

// occGrid is a coarse fixed-resolution occupancy grid over the venue
// space — the GeoReach idea reduced to its cheapest useful form. Each
// cell counts the venues whose geometry intersects it; a query region
// covering only empty cells cannot contain a venue, so the engine can
// answer false without touching labels or trees. Venues outside the
// initial space clamp to the border cells, which keeps the filter
// conservative on both sides: such a venue inflates border counts, and
// a query reaching past the border clamps onto those same cells.
type occGrid struct {
	min    geom.Point
	cw, ch float64 // cell width and height
	nx, ny int
	cells  []int32
	total  int
}

const occGridDim = 64

func newOccGrid(space geom.Rect) *occGrid {
	w := space.Max.X - space.Min.X
	h := space.Max.Y - space.Min.Y
	// A degenerate axis (all venues collinear, or an empty network)
	// gets unit extent so cell sizes stay positive.
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g := &occGrid{
		min: space.Min,
		nx:  occGridDim,
		ny:  occGridDim,
	}
	g.cw = w / float64(g.nx)
	g.ch = h / float64(g.ny)
	g.cells = make([]int32, g.nx*g.ny)
	return g
}

// cellRange returns the clamped cell-index range covered by r.
func (g *occGrid) cellRange(r geom.Rect) (x0, y0, x1, y1 int) {
	x0 = clampCell(int((r.Min.X-g.min.X)/g.cw), g.nx)
	x1 = clampCell(int((r.Max.X-g.min.X)/g.cw), g.nx)
	y0 = clampCell(int((r.Min.Y-g.min.Y)/g.ch), g.ny)
	y1 = clampCell(int((r.Max.Y-g.min.Y)/g.ch), g.ny)
	return
}

func clampCell(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func (g *occGrid) add(r geom.Rect) {
	x0, y0, x1, y1 := g.cellRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.cells[y*g.nx+x]++
		}
	}
	g.total++
}

func (g *occGrid) remove(r geom.Rect) {
	x0, y0, x1, y1 := g.cellRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.cells[y*g.nx+x]--
		}
	}
	g.total--
}

// maybe reports whether any venue might intersect r. False is exact:
// every cell r touches is empty.
func (g *occGrid) maybe(r geom.Rect) bool {
	if g.total == 0 {
		return false
	}
	x0, y0, x1, y1 := g.cellRange(r)
	// A near-whole-space region would scan thousands of cells for a
	// filter that almost certainly passes; skip the scan.
	if (x1-x0+1)*(y1-y0+1) > 1024 {
		return true
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if g.cells[y*g.nx+x] > 0 {
				return true
			}
		}
	}
	return false
}

// clone returns a private copy for snapshots.
func (g *occGrid) clone() *occGrid {
	c := *g
	c.cells = append([]int32(nil), g.cells...)
	return &c
}
