// Package incr maintains a 3DReach index under mutation. Where the old
// dynamic engine rejected cycle-creating edges and absorbed every other
// update by rebuilding, incr keeps the SCC condensation itself live in
// the style of DAGGER (Yildirim et al.): cycle-closing inserts merge
// the affected super-vertices, deletes split lazily with a bounded
// recompute frontier, and interval labels are re-derived only over the
// affected ancestor cone. Spatial state follows the same philosophy —
// venue entries are patched in place through a bounded overlay that is
// periodically folded into the immutable base R-tree, and a coarse
// occupancy grid (GeoReach-style) is maintained per mutation as a
// conservative query prefilter.
//
// The resulting post-order numbering is sparse: merges and splits
// retire component posts, which are never reused (maxPost only grows).
// That is safe because no live venue entry ever carries a dead z — a
// dead post inside a label interval can therefore never produce a
// false positive — and it is what keeps patches local: live posts stay
// valid forever, so the base tree never needs re-keying. When the
// patch frontier would exceed a dirty fraction of the live components,
// or retired posts outnumber live ones, the engine falls back to a
// full rebuild, which re-densifies everything.
package incr

import (
	"fmt"
	"slices"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/labeling"
	"repro/internal/pool"
	"repro/internal/rtree"
)

// Mode selects how the index absorbs updates.
type Mode int

const (
	// Incremental patches the condensation, labels and spatial state
	// locally per mutation. This is the default.
	Incremental Mode = iota
	// FullRebuild marks the index dirty on every mutation and rebuilds
	// everything from the original graph before the next query or
	// snapshot — the old behavior, kept for A/B comparison.
	FullRebuild
)

// Options configures an incremental index.
type Options struct {
	// Mode selects incremental patching (default) or full rebuilds.
	Mode Mode
	// Fanout is the base R-tree fanout (0 = library default).
	Fanout int
	// Parallelism bounds the workers used by full rebuilds and base
	// folds (0/1 = sequential).
	Parallelism int
	// DirtyFraction is the patch-frontier threshold: when a relabel
	// cone (or a split's piece count) exceeds this fraction of the
	// live components, the engine rebuilds instead of patching. The
	// cone recompute is change-pruned — bounded by the labels that
	// actually change, which a full rebuild would also recompute along
	// with the condensation and the spatial index — so patching is
	// never substantially worse than rebuilding and the default of 1
	// disables the fallback. Set a lower fraction to force rebuilds on
	// wide cones (useful as an A/B lever). 0 means the default.
	DirtyFraction float64
	// OverlayMin is the overlay+tombstone size below which the base is
	// never folded. 0 means the default of 128.
	OverlayMin int
}

const (
	defaultDirtyFraction = 1
	defaultOverlayMin    = 128
)

// Stats counts the structural operations the index has performed, for
// observability and benchmark reporting.
type Stats struct {
	Merges         int // cycle-closing inserts that merged components
	Splits         int // deletes that split a component
	SplitChecks    int // intra-component deletes that ran a local SCC pass
	ConeRelabels   int // bounded ancestor-cone relabel passes
	RelabeledComps int // total components relabeled by those passes
	FullRebuilds   int // dirty-fraction (or mode) fallbacks taken
	Folds          int // overlay folds into the base R-tree
	LiveComps      int // current live components
	DeadComps      int // retired component slots since the last rebuild
	OverlayLen     int // current overlay entries
	StaleLen       int // current base tombstones
}

// Index is the mutable engine. It has a single-writer concurrency
// model: mutations and direct queries must come from one goroutine,
// while Snapshot returns immutable views safe for concurrent readers.
type Index struct {
	opts Options

	// Original graph: mutable adjacency over original vertex ids.
	n          int
	out, in    [][]int32
	spatial    []bool
	geo        []geom.Rect // venue geometry; zero for social vertices
	hasExtents bool

	// Live condensation. Component ids index these slices; retired ids
	// keep alive=false, nil members and post 0 until the next rebuild.
	comp      []int32
	alive     []bool
	members   [][]int32
	outC, inC []map[int32]int32 // DAG adjacency, refcounted by original edges
	post      []int32 // sparse 1-based post; 0 = retired
	labels    []intervals.Set
	maxPost   int32 //lint:monotonic — retired posts are never reused
	liveComps int
	deadComps int

	// Spatial state: immutable base + bounded overlay + tombstones.
	base       *rtree.Tree[geom.Box3]
	overlay    []rtree.Entry[geom.Box3]
	overlayIdx map[int32]int      // venue id → overlay slot
	stale      map[int32]struct{} // venue ids whose base entry is superseded
	inBase     []bool             // venue present in base (as of last fold)
	grid       *occGrid

	dirty bool // FullRebuild mode: a mutation is pending
	// pending holds components whose labels may have shrunk after DAG
	// edge deletions, and pendingSplits the intra-component deletes
	// whose split probes have not run yet. Both are deferred to the
	// next label read (query, snapshot, validation, or an insert's
	// cycle check), so a burst of deletes between publications shares
	// one structural pass — and when that pass escalates to a full
	// rebuild, the whole burst costs one rebuild, matching what the
	// FullRebuild mode amortizes.
	pending       map[int32]bool
	pendingSplits [][2]int
	stats         Stats

	// Scratch for splitCheck's bidirectional probes: epoch-stamped
	// visited marks (slot visited iff stamp == epoch) avoid clearing or
	// reallocating per probe. Grown lazily alongside n.
	fwdSeen, bwdSeen []uint64
	probeEpoch       uint64 //lint:monotonic — a rewind would resurrect stale visited marks
	// Scratch for DAG walks over components (propagate), same
	// epoch-stamp scheme but indexed by component id.
	compSeen  []uint64
	compEpoch uint64 //lint:monotonic
}

// New builds an incremental index over the prepared network.
func New(prep *dataset.Prepared, opts Options) *Index {
	if opts.DirtyFraction <= 0 {
		opts.DirtyFraction = defaultDirtyFraction
	}
	if opts.OverlayMin <= 0 {
		opts.OverlayMin = defaultOverlayMin
	}
	n := prep.Net.NumVertices()
	x := &Index{
		opts:       opts,
		n:          n,
		out:        make([][]int32, n),
		in:         make([][]int32, n),
		spatial:    append([]bool(nil), prep.Net.Spatial...),
		geo:        make([]geom.Rect, n),
		hasExtents: prep.Net.HasExtents(),
		inBase:     make([]bool, n),
		grid:       newOccGrid(prep.Net.Space()),
	}
	for u := 0; u < n; u++ {
		if adj := prep.Net.Graph.Out(u); len(adj) > 0 {
			x.out[u] = append([]int32(nil), adj...)
		}
		if x.spatial[u] {
			x.geo[u] = prep.Net.GeometryOf(u)
			x.grid.add(x.geo[u])
		}
	}
	for u := 0; u < n; u++ {
		for _, v := range x.out[u] {
			x.in[v] = append(x.in[v], int32(u))
		}
	}
	x.rebuildDerived()
	x.stats.FullRebuilds = 0 // the initial build is not a fallback
	return x
}

// Name implements the engine naming contract; the incremental index
// keeps the method name of the engine it replaces.
func (x *Index) Name() string { return "3DReach-Dynamic" }

// NumVertices returns the current number of vertices.
func (x *Index) NumVertices() int { return x.n }

// Stats returns operation counters plus current structural sizes.
func (x *Index) Stats() Stats {
	s := x.stats
	s.LiveComps = x.liveComps
	s.DeadComps = x.deadComps
	s.OverlayLen = len(x.overlay)
	s.StaleLen = len(x.stale)
	return s
}

// MemoryBytes estimates the index footprint.
func (x *Index) MemoryBytes() int64 {
	var labelIvs int64
	for _, s := range x.labels {
		labelIvs += int64(len(s))
	}
	edges := 0
	for _, adj := range x.out {
		edges += len(adj)
	}
	var b int64
	b += labelIvs * 8
	b += int64(edges) * 8 // out + in
	b += int64(len(x.comp))*4 + int64(len(x.post))*4
	b += x.base.MemoryBytes()
	b += int64(len(x.overlay)) * 28
	b += int64(len(x.grid.cells)) * 4
	return b
}

// AddUser appends a social vertex and returns its id.
func (x *Index) AddUser() int {
	v := x.addVertex(false)
	return v
}

// AddVenue appends a spatial vertex at (x, y) and returns its id.
func (x *Index) AddVenue(px, py float64) int {
	v := x.addVertex(true)
	x.geo[v] = geom.RectFromPoint(geom.Pt(px, py))
	x.grid.add(x.geo[v])
	if x.opts.Mode == FullRebuild {
		return v
	}
	x.patchVenue(int32(v))
	return v
}

func (x *Index) addVertex(spatial bool) int {
	v := x.n
	x.n++
	x.out = append(x.out, nil)
	x.in = append(x.in, nil)
	x.spatial = append(x.spatial, spatial)
	x.geo = append(x.geo, geom.Rect{})
	x.inBase = append(x.inBase, false)
	if x.opts.Mode == FullRebuild {
		x.comp = append(x.comp, 0) // placeholder; rebuilt before use
		x.dirty = true
		return v
	}
	c := x.allocComp()
	x.comp = append(x.comp, c)
	x.members[c] = []int32{int32(v)}
	x.labels[c] = intervals.Singleton(x.post[c])
	return v
}

// AddEdge inserts the directed edge (u, v). Unlike the engine it
// replaces, a cycle-closing edge is not an error: the affected
// components merge into one super-vertex. Self-loops and duplicate
// edges are no-ops.
func (x *Index) AddEdge(u, v int) error {
	if u < 0 || u >= x.n || v < 0 || v >= x.n {
		return fmt.Errorf("incr: edge (%d,%d) out of range [0,%d)", u, v, x.n)
	}
	if u == v || x.hasEdge(u, v) {
		return nil
	}
	if x.opts.Mode == FullRebuild {
		x.out[u] = append(x.out[u], int32(v))
		x.in[v] = append(x.in[v], int32(u))
		x.dirty = true
		return nil
	}
	// Deferred relabels leave labels over-approximate (deletes only
	// shrink them), so a negative cycle check against stale labels is
	// definitive. A positive may be the staleness talking: make the
	// condensation exact (replay queued splits — relabels can stay
	// deferred) and settle it with a structural region search. The
	// replay runs BEFORE (u, v) enters the adjacency — a replayed
	// split would otherwise re-derive the new edge into the DAG and
	// the addDAGEdge below would count it twice.
	cu, cv := x.comp[u], x.comp[v]
	var region []int32
	if cu != cv && x.labels[cv].ContainsCanonical(x.post[cu]) {
		x.flushSplits()
		// Splits and rebuilds reassign component ids; neither can
		// rejoin u and v, so they are still distinct.
		cu, cv = x.comp[u], x.comp[v]
		region = x.cycleRegion(cu, cv)
	}
	x.out[u] = append(x.out[u], int32(v))
	x.in[v] = append(x.in[v], int32(u))
	if cu == cv {
		return nil // intra-component: the condensation is unchanged
	}
	if region != nil {
		// v really reaches u: the new edge closes a cycle.
		x.mergeCycle(region)
		return nil
	}
	fresh := x.addDAGEdge(cu, cv) == 1
	if fresh {
		// labels[cv] may still be stale (an over-approximation). That
		// keeps the invariant "stored ⊇ exact, and any stale component
		// reaches a pending seed": if cv is stale it reaches a seed,
		// the new edge makes cu and its ancestors reach that seed too,
		// and the flush cone recomputes them all exactly.
		x.propagate([]int32{cu}, x.labels[cv])
	}
	return nil
}

// DeleteEdge removes the directed edge (u, v). Deleting an edge inside
// a component may split it; the split is recomputed only over that
// component's induced subgraph, and labels only over the ancestor cone.
func (x *Index) DeleteEdge(u, v int) error {
	if u < 0 || u >= x.n || v < 0 || v >= x.n {
		return fmt.Errorf("incr: edge (%d,%d) out of range [0,%d)", u, v, x.n)
	}
	if !x.removeEdge(u, v) {
		return fmt.Errorf("incr: no such edge (%d,%d)", u, v)
	}
	if x.opts.Mode == FullRebuild {
		x.dirty = true
		return nil
	}
	if x.comp[u] == x.comp[v] {
		// Defer the split probe to the next flush: until then the
		// component is provisionally whole, so labels over-approximate
		// true reachability — the same safe direction as deferred
		// relabels. The flush replays the burst's deletes one by one
		// against an exact condensation, so each probe sees the
		// single-edge-removed case its correctness argument needs, and
		// an escalation to a full rebuild is paid once for the burst.
		x.pendingSplits = append(x.pendingSplits, [2]int{u, v})
		return nil
	}
	x.interCompDelete(x.comp[u], x.comp[v])
	return nil
}

// interCompDelete retires one refcount of the DAG edge cu→cv after an
// original edge between the two components was removed.
func (x *Index) interCompDelete(cu, cv int32) {
	x.outC[cu][cv]--
	x.inC[cv][cu]--
	if x.outC[cu][cv] != 0 {
		return
	}
	delete(x.outC[cu], cv)
	delete(x.inC[cv], cu)
	if len(x.pending) == 0 && len(x.pendingSplits) == 0 && x.coveredElsewhere(cu, cv) {
		// Some remaining successor's label covers everything the
		// removed successor contributed, so L(cu) — and therefore
		// every ancestor label — is unchanged. This is the common
		// case for high-out-degree components and skips the cone
		// walk entirely. (Only trustworthy when no relabel or split
		// is pending: a stale successor label could vouch falsely.)
		return
	}
	// The DAG lost an edge: cu and its ancestors may shrink. The
	// relabel is deferred to the next label read so consecutive
	// deletes share one cone walk.
	if x.pending == nil {
		x.pending = make(map[int32]bool)
	}
	x.pending[cu] = true
}

// coveredElsewhere reports whether another successor of cu fully covers
// cv's label on its own. Sufficient, not necessary: a union of several
// successors may also cover it, which the cone relabel discovers by
// recomputing and comparing.
func (x *Index) coveredElsewhere(cu, cv int32) bool {
	lv := x.labels[cv]
	for d := range x.outC[cu] {
		if x.labels[d].CoversCanonical(lv) {
			return true
		}
	}
	return false
}

// MoveVenue relocates venue v to (x, y), patching its spatial entry
// and the occupancy grid in place.
func (x *Index) MoveVenue(v int, px, py float64) error {
	if v < 0 || v >= x.n {
		return fmt.Errorf("incr: vertex %d out of range [0,%d)", v, x.n)
	}
	if !x.spatial[v] {
		return fmt.Errorf("incr: vertex %d is not a venue", v)
	}
	old := x.geo[v]
	x.geo[v] = geom.RectFromPoint(geom.Pt(px, py))
	x.grid.remove(old)
	x.grid.add(x.geo[v])
	if x.opts.Mode == FullRebuild {
		x.dirty = true
		return nil
	}
	x.patchVenue(int32(v))
	return nil
}

func (x *Index) hasEdge(u, v int) bool {
	for _, w := range x.out[u] {
		if w == int32(v) {
			return true
		}
	}
	return false
}

func (x *Index) removeEdge(u, v int) bool {
	found := false
	for i, w := range x.out[u] {
		if w == int32(v) {
			x.out[u] = append(x.out[u][:i], x.out[u][i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for i, w := range x.in[v] {
		if w == int32(u) {
			x.in[v] = append(x.in[v][:i], x.in[v][i+1:]...)
			break
		}
	}
	return true
}

// ensure applies any pending FullRebuild-mode mutations. Incremental
// mode is always clean.
func (x *Index) ensure() {
	if x.dirty {
		x.fullRebuild()
		x.dirty = false
	}
	x.flushRelabels()
}

// flushRelabels resolves the deferred structural work: queued
// intra-component deletes first, then the deferred cone relabel over
// every pending seed. It reports whether the flush escalated to a full
// rebuild (after which every derived structure is exact, not just the
// labels).
//
// The queued deletes are replayed one at a time: their edges go back
// into the adjacency (condensation-neutral, since each was inside its
// component when queued and merges keep it there), and then each is
// removed again against a condensation that is exact for the graph
// with the remaining queued edges still present. That way every split
// probe faces exactly the single-edge-removed case its correctness
// argument requires — probing against a graph missing several queued
// edges at once could certify a piece that a still-queued delete has
// already disconnected internally.
func (x *Index) flushRelabels() (rebuilt bool) {
	rebuilt = x.flushSplits()
	if len(x.pending) == 0 {
		return rebuilt
	}
	seeds := make([]int32, 0, len(x.pending))
	for c := range x.pending {
		if x.alive[c] {
			seeds = append(seeds, c)
		}
	}
	x.pending = nil
	if len(seeds) == 0 {
		return rebuilt
	}
	// Map iteration order is random; sort so the relabel (and its
	// fallback decision) is deterministic for a given op sequence.
	slices.Sort(seeds)
	return !x.relabelCone(seeds) || rebuilt
}

// flushSplits replays only the queued intra-component deletes, leaving
// deferred relabels pending. Cycle-closing inserts use it to make the
// condensation exact — their region discovery is structural, so stale
// labels are tolerable but a provisionally-unsplit component is not.
// It reports whether a replayed split escalated to a full rebuild.
func (x *Index) flushSplits() (rebuilt bool) {
	if len(x.pendingSplits) == 0 {
		return false
	}
	ps := x.pendingSplits
	x.pendingSplits = nil
	before := x.stats.FullRebuilds
	for _, e := range ps {
		x.out[e[0]] = append(x.out[e[0]], int32(e[1]))
		x.in[e[1]] = append(x.in[e[1]], int32(e[0]))
	}
	for _, e := range ps {
		x.removeEdge(e[0], e[1])
		if cu, cv := x.comp[e[0]], x.comp[e[1]]; cu == cv {
			// A mid-replay rebuild keeps the state exact — the
			// not-yet-replayed edges were present in the adjacency
			// it derived from — so the replay just carries on.
			x.splitCheck(cu, e[0], e[1])
		} else {
			// An earlier replayed split separated the endpoints;
			// its re-derivation saw this edge in the adjacency and
			// counted it into the DAG, so retire it like any
			// inter-component delete.
			x.interCompDelete(cu, cv)
		}
	}
	return x.stats.FullRebuilds != before
}

// fullRebuild re-derives the condensation, labels and spatial state
// from the original graph. Posts become dense again; retired slots and
// the overlay disappear.
func (x *Index) fullRebuild() {
	x.pending = nil // rebuilt labels are exact; nothing left to heal
	// Queued split probes are moot too: the rebuild derives the
	// condensation from an adjacency their deletes already left. (A
	// rebuild during a flush replay sees the replayed edges re-added,
	// which is equally exact; the replay loop holds its own copy.)
	x.pendingSplits = nil
	x.rebuildDerived()
	x.stats.FullRebuilds++
}

func (x *Index) rebuildDerived() {
	b := graph.NewBuilder(x.n)
	for u, adj := range x.out {
		for _, v := range adj {
			b.AddEdge(u, int(v))
		}
	}
	cond := b.Build().Condense()
	nc := len(cond.Members)
	l := labeling.Build(cond.DAG, labeling.Options{Parallelism: x.opts.Parallelism})

	x.comp = cond.Comp
	x.members = cond.Members
	x.post = l.Post
	x.labels = l.Labels
	// A full rebuild re-densifies the post space, so the high-water mark
	// legitimately drops; snapshots pin the old numbering and never mix
	// with the new one.
	//lint:ignore epochmono rebuild re-densifies posts; old numbering is pinned by snapshots
	x.maxPost = int32(nc)
	x.alive = make([]bool, nc)
	for c := range x.alive {
		x.alive[c] = true
	}
	x.outC = make([]map[int32]int32, nc)
	x.inC = make([]map[int32]int32, nc)
	for u, adj := range x.out {
		cu := x.comp[u]
		for _, v := range adj {
			if cv := x.comp[v]; cu != cv {
				x.addDAGEdge(cu, cv)
			}
		}
	}
	x.liveComps = nc
	x.deadComps = 0
	x.foldBase()
	x.stats.Folds-- // the fold above is part of the rebuild, not a patch-window fold
}

// foldBase packs every live venue entry into a fresh base tree and
// empties the overlay and tombstone set. BulkLoad both reorders its
// input and aliases it from the leaves, so the entry slice built here
// is private to the new tree; published snapshots sharing an old base
// are unaffected.
func (x *Index) foldBase() {
	var entries []rtree.Entry[geom.Box3]
	for v := 0; v < x.n; v++ {
		if !x.spatial[v] {
			continue
		}
		z := float64(x.post[x.comp[v]])
		entries = append(entries, rtree.Entry[geom.Box3]{
			Box: geom.Box3FromRect(x.geo[v], z, z),
			ID:  int32(v),
		})
		x.inBase[v] = true
	}
	wp := pool.New(max(x.opts.Parallelism, 1))
	x.base = rtree.BulkLoadPool(entries, x.opts.Fanout, wp)
	if !x.hasExtents {
		x.base.SetLeafBoundBytes(24)
	}
	x.overlay = nil
	x.overlayIdx = nil
	x.stale = nil
	x.stats.Folds++
}
