package incr

import (
	"repro/internal/graph"
	"repro/internal/intervals"
)

// This file holds the condensation patch operations: component
// allocation and retirement, DAG adjacency refcounting, label
// propagation for inserts, the cycle merge, the lazy split, and the
// bounded ancestor-cone relabel that both deletes funnel into.

// allocComp returns a fresh live component slot with a fresh post.
// Its label is the caller's responsibility.
func (x *Index) allocComp() int32 {
	c := int32(len(x.alive))
	x.maxPost++
	x.alive = append(x.alive, true)
	x.members = append(x.members, nil)
	x.outC = append(x.outC, nil)
	x.inC = append(x.inC, nil)
	x.post = append(x.post, x.maxPost)
	x.labels = append(x.labels, nil)
	x.liveComps++
	return c
}

// retire marks component c dead and unlinks it from the DAG. Its post
// is never reused; label intervals elsewhere may keep covering it,
// which is harmless because no live venue entry carries a dead z.
func (x *Index) retire(c int32) {
	for d := range x.outC[c] {
		delete(x.inC[d], c)
	}
	for d := range x.inC[c] {
		delete(x.outC[d], c)
	}
	x.outC[c] = nil
	x.inC[c] = nil
	x.members[c] = nil
	x.labels[c] = nil
	x.post[c] = 0
	x.alive[c] = false
	x.liveComps--
	x.deadComps++
}

// addDAGEdge increments the refcount of DAG edge (cu, cv) — the number
// of original edges collapsing onto it — and returns the new count.
func (x *Index) addDAGEdge(cu, cv int32) int32 {
	if x.outC[cu] == nil {
		x.outC[cu] = make(map[int32]int32)
	}
	if x.inC[cv] == nil {
		x.inC[cv] = make(map[int32]int32)
	}
	x.outC[cu][cv]++
	x.inC[cv][cu]++
	return x.outC[cu][cv]
}

// propagate merges add into the labels of the source components and
// every ancestor, pruning branches whose label already covers add (the
// same reverse-BFS labeling.Dynamic uses). Labels are replaced with
// freshly merged sets, never mutated, so published snapshots stay
// intact. Epoch-stamped marks bound the walk to one visit per
// component: without them a dense ancestor DAG re-enqueues a component
// once per path, which made core merges quadratic on fragmented
// networks.
func (x *Index) propagate(sources []int32, add intervals.Set) {
	for len(x.compSeen) < len(x.alive) {
		x.compSeen = append(x.compSeen, 0)
	}
	x.compEpoch++
	ep := x.compEpoch
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if x.compSeen[s] != ep {
			x.compSeen[s] = ep
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		w := queue[qi]
		if x.labels[w].CoversCanonical(add) {
			continue
		}
		x.labels[w] = intervals.MergeCanonical(x.labels[w], add)
		for p := range x.inC[w] {
			if x.compSeen[p] != ep {
				x.compSeen[p] = ep
				queue = append(queue, p)
			}
		}
	}
}

// cycleRegion reports the components a cycle-closing insert (cu, cv)
// would collapse: every component on a DAG path cv ⇝ cu, or nil when
// cv does not reach cu. The discovery is purely structural — backward
// BFS from cu, then forward BFS from cv restricted to that set — so
// it stays exact while labels carry deferred (over-approximate)
// relabels; a label-guided walk here could absorb a component whose
// stale label vouches for a reach it no longer has. It does require
// an exact condensation: callers must replay deferred splits first.
func (x *Index) cycleRegion(cu, cv int32) []int32 {
	toCU := map[int32]bool{cu: true}
	stack := []int32{cu}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range x.inC[c] {
			if !toCU[p] {
				toCU[p] = true
				stack = append(stack, p)
			}
		}
	}
	if !toCU[cv] {
		return nil
	}
	affected := []int32{cv}
	inA := map[int32]bool{cv: true}
	for qi := 0; qi < len(affected); qi++ {
		for d := range x.outC[affected[qi]] {
			if !inA[d] && toCU[d] {
				inA[d] = true
				affected = append(affected, d)
			}
		}
	}
	return affected
}

// mergeCycle collapses the components of a cycleRegion into one
// super-vertex. The survivor keeps the largest member list; the union
// label is pushed to its ancestors; venue entries of absorbed members
// are re-keyed to the survivor's post. Constituent labels may carry
// deferred relabels: the union is then over-approximate too, and heals
// at the next flush — the merged component inherits its constituents'
// paths to every pending seed, so it sits inside the eventual cones.
func (x *Index) mergeCycle(affected []int32) {
	inA := make(map[int32]bool, len(affected))
	for _, c := range affected {
		inA[c] = true
	}

	// Survivor: largest member list, so the fewest vertices re-point.
	r := affected[0]
	for _, c := range affected {
		if len(x.members[c]) > len(x.members[r]) {
			r = c
		}
	}

	sets := make([]intervals.Set, 0, len(affected))
	sets = append(sets, x.labels[r])
	for _, c := range affected {
		if c != r {
			sets = append(sets, x.labels[c])
		}
	}
	lbl := intervals.MergeManyCanonical(sets)

	// Rewire DAG adjacency: external edges of absorbed components move
	// to the survivor (refcounts add); edges internal to the merged
	// region disappear.
	for _, c := range affected {
		if c == r {
			continue
		}
		for d, cnt := range x.outC[c] {
			delete(x.inC[d], c)
			if !inA[d] {
				x.addDAGEdgeCount(r, d, cnt)
			}
		}
		for d, cnt := range x.inC[c] {
			delete(x.outC[d], c)
			if !inA[d] {
				x.addDAGEdgeCount(d, r, cnt)
			}
		}
	}
	for d := range x.outC[r] {
		if inA[d] {
			delete(x.outC[r], d)
		}
	}
	for d := range x.inC[r] {
		if inA[d] {
			delete(x.inC[r], d)
		}
	}

	var moved []int32
	for _, c := range affected {
		if c == r {
			continue
		}
		// An absorbed pending seed hands its deferred relabel to the
		// survivor — dropping it would leave the seed's stale
		// ancestors with no path into any future flush cone.
		if x.pending[c] {
			delete(x.pending, c)
			x.pending[r] = true
		}
		for _, m := range x.members[c] {
			x.comp[m] = r
			if x.spatial[m] {
				moved = append(moved, m)
			}
		}
		x.members[r] = append(x.members[r], x.members[c]...)
		x.members[c] = nil
		x.labels[c] = nil
		x.outC[c] = nil
		x.inC[c] = nil
		x.post[c] = 0
		x.alive[c] = false
		x.liveComps--
		x.deadComps++
	}
	x.labels[r] = lbl
	preds := make([]int32, 0, len(x.inC[r]))
	for p := range x.inC[r] {
		preds = append(preds, p)
	}
	x.propagate(preds, lbl)
	for _, m := range moved {
		x.patchVenue(m)
	}
	x.stats.Merges++
	x.maybeCompact()
}

// addDAGEdgeCount is addDAGEdge with an explicit refcount delta, used
// when merging adjacency maps.
func (x *Index) addDAGEdgeCount(cu, cv int32, cnt int32) {
	if x.outC[cu] == nil {
		x.outC[cu] = make(map[int32]int32)
	}
	if x.inC[cv] == nil {
		x.inC[cv] = make(map[int32]int32)
	}
	x.outC[cu][cv] += cnt
	x.inC[cv][cu] += cnt
}

// splitCheck decides whether deleting the intra-component edge (u, v)
// split component c, exploiting two facts about losing a single edge
// from a strongly connected component:
//
//  1. Every member still reaches u: a simple path ending at u cannot
//     use an edge whose tail is u. So u's new component is exactly the
//     set R of vertices u still reaches inside c.
//  2. Every member is still reached from v: a simple path starting at
//     v cannot use an edge whose head is v. So v's new component is
//     exactly the set B of vertices that still reach v inside c.
//
// A bidirectional probe grows R forward from u and B backward from v
// in lockstep; the moment they touch, u→v survives and the component
// is still whole — nearly free in a dense component. On a real split
// the probes pin down piece(u) and piece(v) exactly, and an SCC pass
// runs only over the (typically empty) members outside both. The most
// populous piece keeps c's id, post, and venue keys, and only departed
// members have their comp ids, DAG edges, and venue entries re-derived:
// peeling a few vertices off a giant component costs the departed
// members' degree, not the giant's.
func (x *Index) splitCheck(c int32, u, v int) {
	x.stats.SplitChecks++
	m := x.members[c]
	if len(m) == 1 || u == v {
		return
	}
	nR, nB, meet := x.bidiProbe(c, u, v)
	if meet {
		return // u still reaches v: still strongly connected
	}

	// Decompose the remainder m∖(R∪B) into SCCs over its induced
	// subgraph. Pieces: 0 is R, 1 is B, 2+k is remainder SCC k.
	rest := make([]int32, 0, len(m)-nR-nB)
	local := make(map[int32]int32)
	for _, w := range m {
		if x.fwdSeen[w] != x.probeEpoch && x.bwdSeen[w] != x.probeEpoch {
			local[w] = int32(len(rest))
			rest = append(rest, w)
		}
	}
	b := graph.NewBuilder(len(rest))
	for i, w := range rest {
		for _, y := range x.out[w] {
			if ly, ok := local[y]; ok {
				b.AddEdge(i, int(ly))
			}
		}
	}
	lcomp, rcnt := b.Build().SCCs()
	cnt := rcnt + 2

	// Piece-count valve: a component shattering into a large fraction of
	// the live components costs O(pieces × ancestors) in upward label
	// pushes below; a rebuild is cheaper and exact. Decide before
	// mutating. The ancestors of c are NOT part of this bound — their
	// relabel is deferred to the next flush, so a split stays cheap even
	// under a fragmented core with thousands of ancestor components.
	if x.tooDirty(cnt) {
		x.fullRebuild()
		return
	}

	// The most populous piece inherits c; the rest get fresh ids.
	sizes := make([]int, cnt)
	sizes[0], sizes[1] = nR, nB
	for i := range rest {
		sizes[2+lcomp[i]]++
	}
	keep := 0
	for k, sz := range sizes {
		if sz > sizes[keep] {
			keep = k
		}
	}
	pieceID := make([]int32, cnt)
	for k := range pieceID {
		if k == keep {
			pieceID[k] = c
		} else {
			pieceID[k] = x.allocComp()
		}
	}
	departed := make(map[int32]bool, len(m)-sizes[keep])
	kept := m[:0:0]
	for _, w := range m {
		var k int
		switch {
		case x.fwdSeen[w] == x.probeEpoch:
			k = 0
		case x.bwdSeen[w] == x.probeEpoch:
			k = 1
		default:
			k = 2 + int(lcomp[local[w]])
		}
		nc := pieceID[k]
		if nc == c {
			kept = append(kept, w)
			continue
		}
		departed[w] = true
		x.comp[w] = nc
		x.members[nc] = append(x.members[nc], w)
	}
	x.members[c] = kept

	// Re-derive only the DAG edges incident to departed members. Edges
	// between two departed members surface once, through the tail's out
	// list; edges to or from the kept piece were intra-component and
	// appear for the first time; edges crossing the old component
	// boundary move their refcount from c to the departed piece.
	repointed := make(map[int32]bool)
	for w := range departed {
		pw := x.comp[w]
		for _, y := range x.out[w] {
			switch cy := x.comp[y]; {
			case departed[y] || cy == c:
				if cy != pw {
					x.addDAGEdge(pw, cy)
				}
			default:
				x.decDAGEdge(c, cy)
				x.addDAGEdge(pw, cy)
			}
		}
		for _, y := range x.in[w] {
			if departed[y] {
				continue // covered by y's out list
			}
			if cy := x.comp[y]; cy == c {
				x.addDAGEdge(c, pw)
			} else {
				x.decDAGEdge(cy, c)
				x.addDAGEdge(cy, pw)
				repointed[cy] = true
			}
		}
	}

	// Label the fresh pieces by the exact recurrence over their
	// successors' stored labels — possibly stale inputs, so the results
	// are over-approximate at worst. Pieces are computed successors-
	// first among themselves (allocComp leaves labels nil, so a nil
	// successor means "not yet"; the piece DAG is acyclic, so each
	// sweep labels at least one piece) so a piece that reaches a
	// sibling inherits the sibling's full coverage at compute time.
	for unlabeled := cnt - 1; unlabeled > 0; {
		for _, nc := range pieceID {
			if nc == c || x.labels[nc] != nil {
				continue
			}
			ready := true
			for d := range x.outC[nc] {
				if x.labels[d] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			sets := make([]intervals.Set, 0, len(x.outC[nc])+1)
			sets = append(sets, intervals.Singleton(x.post[nc]))
			for d := range x.outC[nc] {
				sets = append(sets, x.labels[d])
			}
			x.labels[nc] = intervals.MergeManyCanonical(sets)
			unlabeled--
		}
	}
	// Every ancestor of a fresh piece must cover the fresh posts; the
	// rest of a piece's reach was already covered above the split —
	// any current path into a piece enters through an edge whose tail
	// reached c before — so the fresh posts are the only new coverage
	// to push. They are allocated consecutively and compress to one
	// interval, making the upward walk one cheap merge per ancestor
	// instead of a full label push per piece.
	fresh := make(intervals.Set, 0, cnt-1)
	var preds []int32
	for _, nc := range pieceID {
		if nc == c {
			continue
		}
		fresh = fresh.Add(x.post[nc], x.post[nc])
		for p := range x.inC[nc] {
			preds = append(preds, p)
		}
	}
	x.propagate(preds, fresh.Compress())
	// Shrinks are deferred: labels above the split may still cover reach
	// that went only through departed members. The seeds are every piece
	// plus every external predecessor whose DAG edge was re-pointed off
	// c — the flush's change-pruned relabel reacts to successor-label
	// changes but cannot see successor-set changes, so comps whose edge
	// sets this split rewired must be recomputed unconditionally. Every
	// old ancestor of c reaches one of these seeds, so the entire shrink
	// cone sits inside the next flush.
	if x.pending == nil {
		x.pending = make(map[int32]bool)
	}
	for _, nc := range pieceID {
		x.pending[nc] = true
	}
	for cy := range repointed {
		x.pending[cy] = true
	}
	// Kept members hold their post (and venue z keys); only departed
	// venues re-key.
	for w := range departed {
		if x.spatial[w] {
			x.patchVenue(w)
		}
	}
	x.stats.Splits++
	x.maybeCompact()
}

// bidiProbe grows u's forward-reachable set R and v's backward-
// reachable set B inside component c, alternating one vertex expansion
// per side. If the probes touch (some vertex is in both, so u→v
// survives) it reports meet=true immediately. Otherwise it runs both
// to completion and returns |R| and |B|; membership is readable via
// fwdSeen/bwdSeen stamped with the current probeEpoch. Once one side
// exhausts without meeting, the other can never touch it — a vertex in
// both sets would give a surviving u→v path, contradicting the
// exhausted search — so no collision checks are needed after that.
func (x *Index) bidiProbe(c int32, u, v int) (nR, nB int, meet bool) {
	for len(x.fwdSeen) < x.n {
		x.fwdSeen = append(x.fwdSeen, 0)
		x.bwdSeen = append(x.bwdSeen, 0)
	}
	x.probeEpoch++
	ep := x.probeEpoch
	x.fwdSeen[u] = ep
	x.bwdSeen[v] = ep
	fq, bq := []int32{int32(u)}, []int32{int32(v)}
	nR, nB = 1, 1
	for len(fq) > 0 || len(bq) > 0 {
		if len(fq) > 0 {
			w := fq[0]
			fq = fq[1:]
			for _, y := range x.out[w] {
				if x.comp[y] != c || x.fwdSeen[y] == ep {
					continue
				}
				if x.bwdSeen[y] == ep {
					return 0, 0, true // u→y and y→v: no split
				}
				x.fwdSeen[y] = ep
				nR++
				fq = append(fq, y)
			}
		}
		if len(bq) > 0 {
			w := bq[0]
			bq = bq[1:]
			for _, y := range x.in[w] {
				if x.comp[y] != c || x.bwdSeen[y] == ep {
					continue
				}
				if x.fwdSeen[y] == ep {
					return 0, 0, true // u→y and y→v: no split
				}
				x.bwdSeen[y] = ep
				nB++
				bq = append(bq, y)
			}
		}
	}
	return nR, nB, false
}

// decDAGEdge removes one refcount from the DAG edge cu→cv, deleting
// the edge when it reaches zero.
func (x *Index) decDAGEdge(cu, cv int32) {
	x.outC[cu][cv]--
	if x.outC[cu][cv] <= 0 {
		delete(x.outC[cu], cv)
		delete(x.inC[cv], cu)
	} else {
		x.inC[cv][cu]--
	}
}

// relabelCone recomputes the labels of the seed components and every
// ancestor, successors-first: L(c) = {post(c)} ∪ ⋃ L(d) over DAG
// successors d. Successors outside the cone keep their (correct)
// labels and are read as-is. Falls back to a full rebuild — and
// reports it by returning false — when the cone exceeds the dirty
// fraction of live components.
func (x *Index) relabelCone(seeds []int32) bool {
	inCone := make(map[int32]bool, len(seeds))
	cone := append([]int32(nil), seeds...)
	for _, s := range seeds {
		inCone[s] = true
	}
	for qi := 0; qi < len(cone); qi++ {
		w := cone[qi]
		for p := range x.inC[w] {
			if !inCone[p] {
				inCone[p] = true
				cone = append(cone, p)
			}
		}
	}
	if x.tooDirty(len(cone)) {
		x.fullRebuild()
		return false
	}

	// Iterative DFS post-order over the cone-restricted DAG: every
	// cone member finishes after all of its cone successors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[int32]uint8, len(cone))
	var order []int32
	var stack []int32
	for _, root := range cone {
		if state[root] != white {
			continue
		}
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			w := stack[len(stack)-1]
			switch state[w] {
			case white:
				state[w] = gray
				for d := range x.outC[w] {
					if inCone[d] && state[d] == white {
						stack = append(stack, d)
					}
				}
			case gray:
				state[w] = black
				order = append(order, w)
				stack = stack[:len(stack)-1]
			default:
				stack = stack[:len(stack)-1]
			}
		}
	}

	// Change-pruned recompute, successors-first: a cone member is only
	// recomputed when it is a seed or one of its successors actually
	// changed — the recompute frontier stops as soon as fresh labels
	// equal old ones, so a delete deep in the DAG rarely touches more
	// than a handful of ancestors even when the cone is large.
	seedSet := make(map[int32]bool, len(seeds))
	for _, s := range seeds {
		seedSet[s] = true
	}
	changed := make(map[int32]bool, len(seeds))
	relabeled := 0
	for _, c := range order {
		need := seedSet[c]
		if !need {
			for d := range x.outC[c] {
				if changed[d] {
					need = true
					break
				}
			}
		}
		if !need {
			continue
		}
		sets := make([]intervals.Set, 0, len(x.outC[c])+1)
		sets = append(sets, intervals.Singleton(x.post[c]))
		for d := range x.outC[c] {
			sets = append(sets, x.labels[d])
		}
		lbl := intervals.MergeManyCanonical(sets)
		relabeled++
		if !lbl.Equal(x.labels[c]) {
			x.labels[c] = lbl
			changed[c] = true
		}
	}
	x.stats.ConeRelabels++
	x.stats.RelabeledComps += relabeled
	return true
}

// minPatchFrontier is an absolute floor under which a patch never
// falls back: on tiny graphs any frontier exceeds a fraction of the
// live components, yet patching is trivially cheap.
const minPatchFrontier = 16

// tooDirty reports whether a patch touching frontier components should
// fall back to a full rebuild.
func (x *Index) tooDirty(frontier int) bool {
	return frontier > minPatchFrontier &&
		float64(frontier) > x.opts.DirtyFraction*float64(x.liveComps)
}

// maybeCompact rebuilds when retired component slots outnumber live
// ones: the post space and the comp-indexed slices have become mostly
// garbage, and a rebuild re-densifies both.
func (x *Index) maybeCompact() {
	if x.deadComps > x.liveComps {
		x.fullRebuild()
	}
}
