package incr

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/geom"
	"repro/internal/intervals"
	"repro/internal/rtree"
)

// Validate deep-checks every structural invariant of the patched
// index: the component partition, the sparse post assignment and label
// nesting, the DAG adjacency's refcount symmetry against the original
// edges, acyclicity, and the spatial decomposition (each live venue
// exactly once across base and overlay, at z = post of its component).
// It runs in O(V + E + labels + venues) and is called by the
// equivalence harness after every batch and by rrserve -check-publish
// on every published snapshot (via Snapshot.Validate).
func (x *Index) Validate() error {
	x.ensure()

	// Component partition: comp points into live slots, members lists
	// invert comp, every vertex appears exactly once.
	if len(x.comp) != x.n {
		return fmt.Errorf("incr: %d comp slots for %d vertices", len(x.comp), x.n)
	}
	live := 0
	counted := 0
	for c := range x.alive {
		if !x.alive[c] {
			if x.members[c] != nil {
				return fmt.Errorf("incr: dead component %d still has members", c)
			}
			continue
		}
		live++
		if len(x.members[c]) == 0 {
			return fmt.Errorf("incr: live component %d has no members", c)
		}
		for _, v := range x.members[c] {
			if v < 0 || int(v) >= x.n {
				return fmt.Errorf("incr: component %d member %d out of range", c, v)
			}
			if x.comp[v] != int32(c) {
				return fmt.Errorf("incr: vertex %d listed in component %d but comp says %d", v, c, x.comp[v])
			}
			counted++
		}
	}
	if live != x.liveComps {
		return fmt.Errorf("incr: %d live components counted but liveComps = %d", live, x.liveComps)
	}
	if counted != x.n {
		return fmt.Errorf("incr: members cover %d of %d vertices", counted, x.n)
	}

	// Posts, labels, edge nesting, acyclicity.
	if err := check.SparsePosts(x.alive, x.post, x.maxPost); err != nil {
		return err
	}
	at := func(c int) intervals.Set { return x.labels[c] }
	if err := check.SparseLabels(x.alive, x.post, at); err != nil {
		return err
	}
	if err := check.SparseEdges(x.alive, x.post, at, func(fn func(u, v int)) {
		for c := range x.outC {
			for d := range x.outC[c] {
				fn(c, int(d))
			}
		}
	}); err != nil {
		return err
	}

	// DAG refcounts: outC/inC mirror each other and count exactly the
	// cross-component original edges.
	want := make(map[int64]int32)
	for u, adj := range x.out {
		cu := x.comp[u]
		for _, v := range adj {
			if cv := x.comp[v]; cu != cv {
				want[int64(cu)<<32|int64(uint32(cv))]++
			}
		}
	}
	got := 0
	for c := range x.outC {
		for d, cnt := range x.outC[c] {
			if cnt <= 0 {
				return fmt.Errorf("incr: DAG edge (%d,%d) has refcount %d", c, d, cnt)
			}
			if x.inC[d][int32(c)] != cnt {
				return fmt.Errorf("incr: DAG edge (%d,%d) refcount %d but reverse says %d", c, d, cnt, x.inC[d][int32(c)])
			}
			if want[int64(c)<<32|int64(uint32(d))] != cnt {
				return fmt.Errorf("incr: DAG edge (%d,%d) refcount %d but %d original edges collapse onto it",
					c, d, cnt, want[int64(c)<<32|int64(uint32(d))])
			}
			got++
		}
	}
	if got != len(want) {
		return fmt.Errorf("incr: %d DAG edges present but %d expected from original adjacency", got, len(want))
	}

	// Spatial decomposition.
	if err := x.base.Validate(); err != nil {
		return err
	}
	return validateSpatial(x.n, x.spatial, x.comp, x.post, x.base, x.overlay, x.stale)
}

// validateSpatial checks that every spatial vertex is represented by
// exactly one live entry — in the base (not tombstoned) or in the
// overlay — carrying z = post(comp(v)), and that tombstones only cover
// vertices that do have a base entry.
func validateSpatial(n int, spatial []bool, comp, post []int32,
	base *rtree.Tree[geom.Box3], overlay []rtree.Entry[geom.Box3], stale map[int32]struct{}) error {
	liveEntry := make(map[int32]float64, len(overlay))
	inBase := make(map[int32]bool)
	ok := true
	var verr error
	base.All(func(e rtree.Entry[geom.Box3]) bool {
		if inBase[e.ID] {
			verr = fmt.Errorf("incr: venue %d appears twice in the base tree", e.ID)
			ok = false
			return false
		}
		inBase[e.ID] = true
		if _, dead := stale[e.ID]; dead {
			return true
		}
		liveEntry[e.ID] = e.Box.Min.Z
		return true
	})
	if !ok {
		return verr
	}
	for v := range stale {
		if !inBase[v] {
			return fmt.Errorf("incr: tombstone for venue %d which has no base entry", v)
		}
	}
	for _, e := range overlay {
		if _, dup := liveEntry[e.ID]; dup {
			return fmt.Errorf("incr: venue %d live in both base and overlay", e.ID)
		}
		liveEntry[e.ID] = e.Box.Min.Z
	}
	for v := 0; v < n; v++ {
		if !spatial[v] {
			continue
		}
		z, present := liveEntry[int32(v)]
		if !present {
			return fmt.Errorf("incr: venue %d has no live spatial entry", v)
		}
		if wantZ := float64(post[comp[v]]); z != wantZ {
			return fmt.Errorf("incr: venue %d entry at z=%v but post(comp)=%v", v, z, wantZ)
		}
		delete(liveEntry, int32(v))
	}
	if len(liveEntry) != 0 {
		return fmt.Errorf("incr: %d spatial entries for non-venue vertices", len(liveEntry))
	}
	return nil
}

// Validate deep-checks a snapshot: well-formed self-containing labels
// over the referenced components, distinct posts, base-tree structure
// and the exactly-once spatial decomposition at capture time.
func (s *Snapshot) Validate() error {
	n := s.q.n
	alive := make([]bool, len(s.post))
	for v := 0; v < n; v++ {
		c := s.q.comp[v]
		if c < 0 || int(c) >= len(s.post) {
			return fmt.Errorf("incr: snapshot comp[%d] = %d out of range [0,%d)", v, c, len(s.post))
		}
		alive[c] = true
	}
	maxPost := int32(0)
	for c, a := range alive {
		if a && s.post[c] > maxPost {
			maxPost = s.post[c]
		}
	}
	// A snapshot carries no members or edges; dead slots may retain
	// posts from before capture, so restrict the post checks to the
	// referenced components.
	seen := make(map[int32]int)
	for c, a := range alive {
		if !a {
			continue
		}
		p := s.post[c]
		if p < 1 {
			return fmt.Errorf("incr: snapshot component %d has post %d", c, p)
		}
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("incr: snapshot components %d and %d share post %d", prev, c, p)
		}
		seen[p] = c
	}
	if err := check.SparseLabels(alive, s.post, func(c int) intervals.Set { return s.q.labels[c] }); err != nil {
		return err
	}
	if err := s.q.base.Validate(); err != nil {
		return err
	}
	return validateSpatial(n, s.spatial, s.q.comp, s.post, s.q.base, s.q.overlay, s.q.stale)
}
