package incr

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/intervals"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// qview is the read-only state a RangeReach evaluation needs. Both the
// live Index and its snapshots evaluate through it, so the two paths
// cannot drift.
type qview struct {
	n       int
	comp    []int32
	labels  []intervals.Set
	base    *rtree.Tree[geom.Box3]
	overlay []rtree.Entry[geom.Box3]
	stale   map[int32]struct{}
	grid    *occGrid
}

// rangeReach is the standard 3DReach evaluation over patched state:
// the occupancy grid first (a region with no venues anywhere answers
// false in a few cell reads), then one cuboid search per label
// interval against the base tree — skipping tombstoned entries — then
// the bounded overlay scan.
func (q qview) rangeReach(v int, r geom.Rect, sp *trace.Span) bool {
	if v < 0 || v >= q.n {
		panic(fmt.Sprintf("incr: vertex %d out of range [0,%d)", v, q.n))
	}
	if !q.grid.maybe(r) {
		return false
	}
	for _, iv := range q.labels[q.comp[v]] {
		sp.AddLabels(1)
		box := geom.Box3FromRect(r, float64(iv.Lo), float64(iv.Hi))
		t := sp.Start()
		ok := false
		if len(q.stale) == 0 {
			_, ok = q.base.SearchAnyTraced(box, sp)
		} else {
			q.base.SearchTraced(box, sp, func(e rtree.Entry[geom.Box3]) bool {
				if _, dead := q.stale[e.ID]; dead {
					return true
				}
				ok = true
				return false
			})
		}
		if !ok {
			sp.AddEntries(len(q.overlay))
			for _, e := range q.overlay {
				if e.Box.Intersects(box) {
					ok = true
					break
				}
			}
		}
		sp.End(trace.StageSpatial, t)
		if ok {
			return true
		}
	}
	return false
}

func (x *Index) view() qview {
	return qview{
		n:       x.n,
		comp:    x.comp,
		labels:  x.labels,
		base:    x.base,
		overlay: x.overlay,
		stale:   x.stale,
		grid:    x.grid,
	}
}

// RangeReach reports whether vertex v currently reaches a spatial
// vertex intersecting r.
func (x *Index) RangeReach(v int, r geom.Rect) bool {
	return x.RangeReachTraced(v, r, nil)
}

// RangeReachTraced is RangeReach with per-stage instrumentation: label
// intervals visited, base-tree node/leaf/entry counts, and overlay
// entry tests all accumulate into sp.
func (x *Index) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	x.ensure()
	return x.view().rangeReach(v, r, sp)
}
