package incr

import (
	"repro/internal/geom"
	"repro/internal/intervals"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// Snapshot is an immutable point-in-time view of an Index, safe for
// concurrent use by any number of goroutines while the owning index
// keeps absorbing updates on its single writer. It costs O(vertices)
// slice-header copies plus copies of the bounded overlay, tombstone
// set and occupancy grid; the base R-tree is shared by pointer since
// it is only ever replaced, never mutated.
//
//lint:frozen
type Snapshot struct {
	q       qview
	spatial []bool
	post    []int32
}

// Snapshot captures the index's current state. Must be called from the
// writer; the returned snapshot itself is freely shareable. Label sets
// are shared by header — patches replace label sets with freshly
// merged ones rather than mutating them, which is what makes the share
// safe.
func (x *Index) Snapshot() *Snapshot {
	x.ensure()
	var stale map[int32]struct{}
	if len(x.stale) > 0 {
		stale = make(map[int32]struct{}, len(x.stale))
		for v := range x.stale {
			stale[v] = struct{}{}
		}
	}
	return &Snapshot{
		q: qview{
			n:       x.n,
			comp:    append([]int32(nil), x.comp...),
			labels:  append([]intervals.Set(nil), x.labels...),
			base:    x.base,
			overlay: append([]rtree.Entry[geom.Box3](nil), x.overlay...),
			stale:   stale,
			grid:    x.grid.clone(),
		},
		spatial: append([]bool(nil), x.spatial...),
		post:    append([]int32(nil), x.post...),
	}
}

// NumVertices returns the number of vertices at capture time.
func (s *Snapshot) NumVertices() int { return s.q.n }

// Name matches the owning index's method name.
func (s *Snapshot) Name() string { return "3DReach-Dynamic" }

// RangeReach answers the query against the captured state.
func (s *Snapshot) RangeReach(v int, r geom.Rect) bool {
	return s.q.rangeReach(v, r, nil)
}

// RangeReachTraced answers the query against the captured state with
// the same instrumentation as Index.RangeReachTraced.
func (s *Snapshot) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	return s.q.rangeReach(v, r, sp)
}
