package incr

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

// mirror is the ground-truth shadow model: the raw graph and geometry
// every index state must agree with, queryable by BFS.
type mirror struct {
	edges   map[[2]int]bool
	spatial []bool
	points  []geom.Point
}

func newMirror(net *dataset.Network) *mirror {
	m := &mirror{
		edges:   make(map[[2]int]bool),
		spatial: append([]bool(nil), net.Spatial...),
		points:  append([]geom.Point(nil), net.Points...),
	}
	net.Graph.Edges(func(u, v int) { m.edges[[2]int{u, v}] = true })
	return m
}

func (m *mirror) network() *dataset.Network {
	var edges [][2]int
	for e := range m.edges {
		edges = append(edges, e)
	}
	return &dataset.Network{
		Name:    "mirror",
		Graph:   graph.FromEdges(len(m.spatial), edges),
		Spatial: m.spatial,
		Points:  m.points,
	}
}

// reach is the BFS oracle: does v reach any spatial vertex whose
// geometry intersects r?
func (m *mirror) reach(v int, r geom.Rect) bool {
	n := len(m.spatial)
	adj := make([][]int, n)
	for e := range m.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	seen := make([]bool, n)
	queue := []int{v}
	seen[v] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if m.spatial[u] && geom.RectFromPoint(m.points[u]).Intersects(r) {
			return true
		}
		for _, w := range adj[u] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

func (m *mirror) randomEdge(rng *rand.Rand) ([2]int, bool) {
	if len(m.edges) == 0 {
		return [2]int{}, false
	}
	k := rng.Intn(len(m.edges))
	for e := range m.edges {
		if k == 0 {
			return e, true
		}
		k--
	}
	return [2]int{}, false
}

func (m *mirror) randomVenue(rng *rand.Rand) (int, bool) {
	var venues []int
	for v, s := range m.spatial {
		if s {
			venues = append(venues, v)
		}
	}
	if len(venues) == 0 {
		return 0, false
	}
	return venues[rng.Intn(len(venues))], true
}

func randomNetwork(rng *rand.Rand, n, edges int) *dataset.Network {
	spatial := make([]bool, n)
	points := make([]geom.Point, n)
	for v := range spatial {
		if rng.Float64() < 0.5 {
			spatial[v] = true
			points[v] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
	}
	var es [][2]int
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			es = append(es, [2]int{u, v})
		}
	}
	return &dataset.Network{
		Name:    "random",
		Graph:   graph.FromEdges(n, es),
		Spatial: spatial,
		Points:  points,
	}
}

func randomRegion(rng *rand.Rand) geom.Rect {
	x, y := rng.Float64()*100, rng.Float64()*100
	w, h := rng.Float64()*40, rng.Float64()*40
	return geom.NewRect(x, y, x+w, y+h)
}

// applyRandomOp mutates the index and the mirror identically. It also
// drives a lockstep second index when one is given (the FullRebuild
// A/B arm).
func applyRandomOp(t *testing.T, rng *rand.Rand, x *Index, m *mirror, lockstep *Index) {
	t.Helper()
	apply := func(f func(ix *Index) error) {
		if err := f(x); err != nil {
			t.Fatalf("op on incremental index: %v", err)
		}
		if lockstep != nil {
			if err := f(lockstep); err != nil {
				t.Fatalf("op on lockstep index: %v", err)
			}
		}
	}
	switch rng.Intn(10) {
	case 0: // add user
		want := len(m.spatial)
		apply(func(ix *Index) error {
			if got := ix.AddUser(); got != want {
				t.Fatalf("AddUser id = %d, want %d", got, want)
			}
			return nil
		})
		m.spatial = append(m.spatial, false)
		m.points = append(m.points, geom.Point{})
	case 1, 2: // add venue
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		want := len(m.spatial)
		apply(func(ix *Index) error {
			if got := ix.AddVenue(p.X, p.Y); got != want {
				t.Fatalf("AddVenue id = %d, want %d", got, want)
			}
			return nil
		})
		m.spatial = append(m.spatial, true)
		m.points = append(m.points, p)
	case 3, 4: // delete an existing edge
		e, ok := m.randomEdge(rng)
		if !ok {
			return
		}
		apply(func(ix *Index) error { return ix.DeleteEdge(e[0], e[1]) })
		delete(m.edges, e)
	case 5: // move a venue
		v, ok := m.randomVenue(rng)
		if !ok {
			return
		}
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		apply(func(ix *Index) error { return ix.MoveVenue(v, p.X, p.Y) })
		m.points[v] = p
	default: // add edge (cycle-closing ones included)
		u, v := rng.Intn(len(m.spatial)), rng.Intn(len(m.spatial))
		if u == v {
			return
		}
		apply(func(ix *Index) error { return ix.AddEdge(u, v) })
		m.edges[[2]int{u, v}] = true
	}
}

// TestEquivalenceRandomized is the update-stream equivalence harness:
// randomized interleaved inserts, deletes and moves, with every
// patched state required to (a) pass deep validation, (b) answer
// identically to the BFS ground truth, (c) answer identically to a
// from-scratch build of the same network, and (d) stay in lockstep
// with a FullRebuild-mode index fed the same ops. Snapshots taken
// along the way validate and answer identically too.
func TestEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		net := randomNetwork(rng, 8+rng.Intn(20), 5+rng.Intn(30))
		prep := dataset.Prepare(net)
		x := New(prep, Options{})
		rebuildArm := New(prep, Options{Mode: FullRebuild})
		m := newMirror(net)

		check := func(step int) {
			if err := x.Validate(); err != nil {
				t.Fatalf("trial %d step %d: validate: %v", trial, step, err)
			}
			snap := x.Snapshot()
			if err := snap.Validate(); err != nil {
				t.Fatalf("trial %d step %d: snapshot validate: %v", trial, step, err)
			}
			scratch := New(dataset.Prepare(m.network()), Options{})
			for q := 0; q < 15; q++ {
				v := rng.Intn(len(m.spatial))
				r := randomRegion(rng)
				want := m.reach(v, r)
				if got := x.RangeReach(v, r); got != want {
					t.Fatalf("trial %d step %d: incremental RangeReach(%d, %v) = %v, want %v",
						trial, step, v, r, got, want)
				}
				if got := snap.RangeReach(v, r); got != want {
					t.Fatalf("trial %d step %d: snapshot RangeReach(%d, %v) = %v, want %v",
						trial, step, v, r, got, want)
				}
				if got := scratch.RangeReach(v, r); got != want {
					t.Fatalf("trial %d step %d: from-scratch RangeReach(%d, %v) = %v, want %v",
						trial, step, v, r, got, want)
				}
				if got := rebuildArm.RangeReach(v, r); got != want {
					t.Fatalf("trial %d step %d: rebuild-mode RangeReach(%d, %v) = %v, want %v",
						trial, step, v, r, got, want)
				}
			}
		}

		check(-1)
		for step := 0; step < 60; step++ {
			applyRandomOp(t, rng, x, m, rebuildArm)
			if step%5 == 4 {
				check(step)
			}
		}
		check(60)
	}
}

// TestMergeOnCycleClosingInsert pins the merge path: a 3-cycle closed
// one edge at a time collapses three components into one super-vertex
// whose venues all answer for each member.
func TestMergeOnCycleClosingInsert(t *testing.T) {
	// 0 → 1 → 2, venue 3 checked in from 2 only.
	net := &dataset.Network{
		Name:    "merge",
		Graph:   graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		Spatial: []bool{false, false, false, true},
		Points:  []geom.Point{{}, {}, {}, geom.Pt(5, 5)},
	}
	x := New(dataset.Prepare(net), Options{})
	at5 := geom.NewRect(4, 4, 6, 6)
	if !x.RangeReach(0, at5) || x.RangeReach(3, at5) == false {
		t.Fatal("pre-merge reachability wrong")
	}
	before := x.Stats()
	if err := x.AddEdge(2, 0); err != nil {
		t.Fatalf("cycle-closing AddEdge: %v", err)
	}
	if got := x.Stats().Merges; got != before.Merges+1 {
		t.Fatalf("Merges = %d, want %d", got, before.Merges+1)
	}
	if x.comp[0] != x.comp[1] || x.comp[1] != x.comp[2] {
		t.Fatal("cycle members not merged into one component")
	}
	if err := x.Validate(); err != nil {
		t.Fatalf("validate after merge: %v", err)
	}
	for v := 0; v < 3; v++ {
		if !x.RangeReach(v, at5) {
			t.Fatalf("vertex %d lost the venue after merge", v)
		}
	}
}

// TestSplitOnDelete pins the split path: deleting the edge that closes
// a 2-cycle splits the merged component back apart, and reachability
// becomes asymmetric again.
func TestSplitOnDelete(t *testing.T) {
	net := &dataset.Network{
		Name:    "split",
		Graph:   graph.FromEdges(3, [][2]int{{0, 1}, {1, 0}, {1, 2}}),
		Spatial: []bool{false, false, true},
		Points:  []geom.Point{{}, {}, geom.Pt(5, 5)},
	}
	x := New(dataset.Prepare(net), Options{})
	if x.comp[0] != x.comp[1] {
		t.Fatal("0 and 1 should start in one component")
	}
	at5 := geom.NewRect(4, 4, 6, 6)
	before := x.Stats()
	if err := x.DeleteEdge(1, 0); err != nil {
		t.Fatalf("DeleteEdge: %v", err)
	}
	// The split probe is deferred; the next label read replays it.
	if !x.RangeReach(0, at5) {
		t.Fatal("0 → 1 → 2 path lost by split")
	}
	s := x.Stats()
	if s.SplitChecks != before.SplitChecks+1 || s.Splits != before.Splits+1 {
		t.Fatalf("split not taken: %+v", s)
	}
	if x.comp[0] == x.comp[1] {
		t.Fatal("component did not split")
	}
	if err := x.Validate(); err != nil {
		t.Fatalf("validate after split: %v", err)
	}
	// 1 still reaches the venue; 0's reverse direction is gone but the
	// forward edge 0→1 remains, so only deleting it isolates 0.
	if err := x.DeleteEdge(0, 1); err != nil {
		t.Fatalf("DeleteEdge: %v", err)
	}
	if x.RangeReach(0, at5) {
		t.Fatal("0 reaches the venue with no path left")
	}
	if !x.RangeReach(1, at5) {
		t.Fatal("1 lost the venue")
	}
}

// TestDeleteErrors pins the error surface.
func TestDeleteErrors(t *testing.T) {
	net := randomNetwork(rand.New(rand.NewSource(7)), 5, 4)
	x := New(dataset.Prepare(net), Options{})
	if err := x.DeleteEdge(-1, 0); err == nil {
		t.Error("out-of-range DeleteEdge accepted")
	}
	if err := x.DeleteEdge(0, 0); err == nil {
		t.Error("self-loop DeleteEdge accepted")
	}
	if err := x.MoveVenue(-1, 0, 0); err == nil {
		t.Error("out-of-range MoveVenue accepted")
	}
	for v, s := range net.Spatial {
		if !s {
			if err := x.MoveVenue(v, 1, 1); err == nil {
				t.Errorf("MoveVenue on social vertex %d accepted", v)
			}
			break
		}
	}
}

// TestOverlayFoldBounded drives enough venue churn to cross the fold
// threshold and checks the overlay actually folds into the base.
func TestOverlayFoldBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := randomNetwork(rng, 10, 10)
	x := New(dataset.Prepare(net), Options{OverlayMin: 16})
	for i := 0; i < 400; i++ {
		x.AddVenue(rng.Float64()*100, rng.Float64()*100)
	}
	s := x.Stats()
	if s.Folds == 0 {
		t.Fatalf("no folds after 400 venue adds: %+v", s)
	}
	if s.OverlayLen+s.StaleLen >= 16 && (s.OverlayLen+s.StaleLen)*8 >= x.base.Len()+s.OverlayLen {
		t.Fatalf("overlay left above the fold threshold: %+v", s)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDirtyFractionFallback pins the cone threshold deterministically
// on a 60-vertex chain (every vertex its own component): deleting an
// edge deep in the chain produces a 41-component ancestor cone, which
// patches under a permissive fraction and falls back to a full rebuild
// under a strict one. Both arms must stay correct.
func TestDirtyFractionFallback(t *testing.T) {
	chain := func() *dataset.Network {
		const n = 60
		var es [][2]int
		for v := 0; v+1 < n; v++ {
			es = append(es, [2]int{v, v + 1})
		}
		spatial := make([]bool, n)
		points := make([]geom.Point, n)
		spatial[n-1] = true
		points[n-1] = geom.Pt(5, 5)
		return &dataset.Network{Name: "chain", Graph: graph.FromEdges(n, es), Spatial: spatial, Points: points}
	}
	at5 := geom.NewRect(4, 4, 6, 6)

	// Cone relabels are deferred to the next label read, so the stats
	// are checked after a query forces the flush.
	patched := New(dataset.Prepare(chain()), Options{DirtyFraction: 1})
	if err := patched.DeleteEdge(40, 41); err != nil {
		t.Fatal(err)
	}
	patched.RangeReach(0, at5)
	if s := patched.Stats(); s.FullRebuilds != 0 || s.ConeRelabels != 1 {
		t.Fatalf("permissive fraction should patch, got %+v", s)
	}

	strict := New(dataset.Prepare(chain()), Options{DirtyFraction: 0.01})
	if err := strict.DeleteEdge(40, 41); err != nil {
		t.Fatal(err)
	}
	strict.RangeReach(0, at5)
	if s := strict.Stats(); s.FullRebuilds != 1 {
		t.Fatalf("strict fraction should rebuild, got %+v", s)
	}

	for _, x := range []*Index{patched, strict} {
		if err := x.Validate(); err != nil {
			t.Fatal(err)
		}
		if x.RangeReach(0, at5) {
			t.Fatal("0 reaches the venue across the deleted edge")
		}
		if !x.RangeReach(41, at5) {
			t.Fatal("41 lost the venue")
		}
	}
}

// TestValidateDetectsCorruption flips individual invariants and checks
// Validate names them.
func TestValidateDetectsCorruption(t *testing.T) {
	fresh := func() *Index {
		return New(dataset.Prepare(randomNetwork(rand.New(rand.NewSource(17)), 12, 20)), Options{})
	}

	x := fresh()
	if err := x.Validate(); err != nil {
		t.Fatalf("fresh index invalid: %v", err)
	}

	x = fresh()
	x.comp[0] = x.comp[1] + 100 // out of any live component
	if x.Validate() == nil {
		t.Error("comp corruption not detected")
	}

	x = fresh()
	x.post[x.comp[0]] = x.maxPost + 7
	if x.Validate() == nil {
		t.Error("post corruption not detected")
	}

	x = fresh()
	x.labels[x.comp[0]] = nil
	if x.Validate() == nil {
		t.Error("label corruption not detected")
	}

	x = fresh()
	c0 := x.comp[0]
	for v := 1; v < x.n; v++ {
		if c := x.comp[v]; c != c0 && !x.labels[c0].ContainsCanonical(x.post[c]) {
			// Phantom DAG edge with no original edge backing it: the
			// refcount cross-check must flag it. (Chosen so it does not
			// also create a label-nesting violation first.)
			x.addDAGEdge(c, c0)
			if x.Validate() == nil {
				t.Error("refcount corruption not detected")
			}
			break
		}
	}

	// Snapshot-side corruption.
	s := fresh().Snapshot()
	if err := s.Validate(); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	s.post[s.q.comp[0]] = 0
	if s.Validate() == nil {
		t.Error("snapshot post corruption not detected")
	}
}
