package incr

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// TestConcurrentQueriesDuringPatching exercises the snapshot contract
// under the race detector: one writer merges, splits, moves and folds
// while reader goroutines hammer previously published snapshots. Every
// reader answer must match the BFS truth of the snapshot it queries.
func TestConcurrentQueriesDuringPatching(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	net := randomNetwork(rng, 24, 40)
	prep := dataset.Prepare(net)
	x := New(prep, Options{OverlayMin: 8}) // fold aggressively mid-run
	m := newMirror(net)

	type published struct {
		snap   *Snapshot
		mirror *mirror
	}
	var cur atomic.Pointer[published]
	publish := func() {
		mc := &mirror{
			edges:   make(map[[2]int]bool, len(m.edges)),
			spatial: append([]bool(nil), m.spatial...),
			points:  append([]geom.Point(nil), m.points...),
		}
		for e := range m.edges {
			mc.edges[e] = true
		}
		cur.Store(&published{snap: x.Snapshot(), mirror: mc})
	}
	publish()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := cur.Load()
				v := rng.Intn(p.snap.NumVertices())
				r := randomRegion(rng)
				if got, want := p.snap.RangeReach(v, r), p.mirror.reach(v, r); got != want {
					select {
					case errs <- "snapshot answer diverged from its mirror":
					default:
					}
					return
				}
			}
		}(int64(100 + g))
	}

	for step := 0; step < 300; step++ {
		applyRandomOp(t, rng, x, m, nil)
		if step%10 == 9 {
			publish()
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
