package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

// randomNetwork builds a random geosocial network, optionally cyclic.
func randomNetwork(rng *rand.Rand, users, venues int, cyclic bool) *dataset.Network {
	n := users + venues
	b := graph.NewBuilder(n)
	perm := rng.Perm(users)
	for i := 0; i < rng.Intn(4*n)+n/2; i++ {
		u := rng.Intn(users)
		var t int
		if rng.Float64() < 0.4 {
			t = users + rng.Intn(venues)
		} else {
			t = rng.Intn(users)
			if !cyclic && perm[u] > perm[t] {
				u, t = t, u
			}
		}
		if u != t {
			b.AddEdge(u, t)
		}
	}
	if cyclic && users >= 3 {
		// Force at least one non-trivial SCC, sometimes spatial.
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddEdge(2, 0)
	}
	net := &dataset.Network{
		Name:    "random",
		Graph:   b.Build(),
		Spatial: make([]bool, n),
		Points:  make([]geom.Point, n),
	}
	for v := users; v < n; v++ {
		net.Spatial[v] = true
		net.Points[v] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return net
}

// spatialCycleNetwork puts spatial vertices inside SCCs, exercising the
// paper's §5 policies where super-vertices own several points.
func spatialCycleNetwork(rng *rand.Rand, n int) *dataset.Network {
	b := graph.NewBuilder(n)
	// A few rings plus random chords.
	for start := 0; start+3 < n; start += 3 + rng.Intn(3) {
		size := 2 + rng.Intn(3)
		if start+size > n {
			size = n - start
		}
		for j := 0; j < size; j++ {
			b.AddEdge(start+j, start+(j+1)%size)
		}
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	net := &dataset.Network{
		Name:    "spatial-cycles",
		Graph:   b.Build(),
		Spatial: make([]bool, n),
		Points:  make([]geom.Point, n),
	}
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.5 {
			net.Spatial[v] = true
			net.Points[v] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
	}
	return net
}

func randomRegion(rng *rand.Rand) geom.Rect {
	x := rng.Float64() * 100
	y := rng.Float64() * 100
	return geom.NewRect(x, y, x+rng.Float64()*50, y+rng.Float64()*50)
}

// buildAll constructs every (method, policy) engine combination.
func buildAll(t *testing.T, prep *dataset.Prepared) []Engine {
	t.Helper()
	var engines []Engine
	for _, m := range append(append([]Method(nil), AllMethods...), ExtendedMethods...) {
		policies := []dataset.SCCPolicy{dataset.Replicate}
		if m.SupportsMBR() {
			policies = append(policies, dataset.MBR)
		}
		for _, p := range policies {
			res, err := BuildMethod(prep, m, BuildOptions{Policy: p})
			if err != nil {
				t.Fatalf("BuildMethod(%v, %v): %v", m, p, err)
			}
			engines = append(engines, res.Engine)
		}
	}
	return engines
}

func TestAllEnginesAgreeWithGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 25; trial++ {
		var net *dataset.Network
		switch trial % 3 {
		case 0:
			net = randomNetwork(rng, 3+rng.Intn(20), 1+rng.Intn(15), true)
		case 1:
			net = randomNetwork(rng, 3+rng.Intn(20), 1+rng.Intn(15), false)
		default:
			net = spatialCycleNetwork(rng, 5+rng.Intn(25))
		}
		prep := dataset.Prepare(net)
		truth := NewNaiveBFS(net)
		engines := buildAll(t, prep)
		for q := 0; q < 25; q++ {
			v := rng.Intn(net.NumVertices())
			r := randomRegion(rng)
			want := truth.RangeReach(v, r)
			for _, e := range engines {
				if got := e.RangeReach(v, r); got != want {
					t.Fatalf("trial %d: %s(%d, %v) = %v, want %v (network %s)",
						trial, e.Name(), v, r, got, want, net.Name)
				}
			}
		}
	}
}

func TestEnginesOnPaperExample(t *testing.T) {
	// Figure 1 with concrete coordinates; Example 2.3: a reaches R, c
	// does not.
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 9},
		{1, 4}, {1, 11}, {1, 3},
		{2, 8}, {2, 10}, {2, 3},
		{4, 5}, {6, 8}, {8, 5}, {9, 6}, {9, 7}, {11, 7},
	}
	g := graph.FromEdges(12, edges)
	spatial := make([]bool, 12)
	points := make([]geom.Point, 12)
	set := func(v int, x, y float64) { spatial[v] = true; points[v] = geom.Pt(x, y) }
	set(4, 70, 80)
	set(7, 80, 60)
	set(5, 10, 10)
	set(8, 20, 90)
	set(11, 40, 20)
	net := &dataset.Network{Name: "figure1", Graph: g, Spatial: spatial, Points: points}
	prep := dataset.Prepare(net)
	r := geom.NewRect(60, 55, 90, 95)
	for _, e := range buildAll(t, prep) {
		if !e.RangeReach(0, r) {
			t.Errorf("%s: RangeReach(a, R) = FALSE, want TRUE", e.Name())
		}
		if e.RangeReach(2, r) {
			t.Errorf("%s: RangeReach(c, R) = TRUE, want FALSE", e.Name())
		}
	}
}

func TestEngineEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	net := randomNetwork(rng, 10, 8, true)
	prep := dataset.Prepare(net)
	truth := NewNaiveBFS(net)
	engines := buildAll(t, prep)

	cases := []geom.Rect{
		geom.NewRect(-1e9, -1e9, 1e9, 1e9), // everything
		geom.NewRect(200, 200, 300, 300),   // empty region
		geom.RectFromPoint(net.Points[10]), // degenerate point region
		geom.NewRect(0, 0, 0.0001, 0.0001), // tiny corner
		geom.NewRect(-50, 40, 150, 41),     // thin slab
	}
	for _, r := range cases {
		for v := 0; v < net.NumVertices(); v++ {
			want := truth.RangeReach(v, r)
			for _, e := range engines {
				if got := e.RangeReach(v, r); got != want {
					t.Fatalf("%s(%d, %v) = %v, want %v", e.Name(), v, r, got, want)
				}
			}
		}
	}
}

func TestStreamingSpaReachAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(821))
	for trial := 0; trial < 10; trial++ {
		net := randomNetwork(rng, 5+rng.Intn(20), 2+rng.Intn(15), true)
		prep := dataset.Prepare(net)
		truth := NewNaiveBFS(net)
		for _, policy := range []dataset.SCCPolicy{dataset.Replicate, dataset.MBR} {
			faithful := NewSpaReachBFL(prep, SpaReachOptions{Policy: policy})
			streaming := NewSpaReachBFL(prep, SpaReachOptions{Policy: policy, Streaming: true})
			for q := 0; q < 25; q++ {
				v := rng.Intn(net.NumVertices())
				r := randomRegion(rng)
				want := truth.RangeReach(v, r)
				if faithful.RangeReach(v, r) != want || streaming.RangeReach(v, r) != want {
					t.Fatalf("trial %d policy %v: variants disagree at v=%d", trial, policy, v)
				}
			}
		}
	}
}

func TestBuildMethodErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	prep := dataset.Prepare(randomNetwork(rng, 5, 5, false))
	if _, err := BuildMethod(prep, MethodSocReach, BuildOptions{Policy: dataset.MBR}); err == nil {
		t.Error("SocReach+MBR accepted")
	}
	if _, err := BuildMethod(prep, MethodGeoReach, BuildOptions{Policy: dataset.MBR}); err == nil {
		t.Error("GeoReach+MBR accepted")
	}
	if _, err := BuildMethod(prep, Method(99), BuildOptions{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestBuildResultsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	prep := dataset.Prepare(randomNetwork(rng, 30, 20, true))
	for _, m := range AllMethods {
		res, err := BuildMethod(prep, m, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine == nil || res.Method != m {
			t.Errorf("%v: result incomplete", m)
		}
		if res.Bytes <= 0 {
			t.Errorf("%v: Bytes = %d", m, res.Bytes)
		}
		if res.Engine.Name() != m.String() {
			t.Errorf("engine name %q != method name %q", res.Engine.Name(), m)
		}
	}
}

func TestMethodStringAndMBRSupport(t *testing.T) {
	names := map[Method]string{
		MethodSpaReachBFL:    "SpaReach-BFL",
		MethodSpaReachINT:    "SpaReach-INT",
		MethodGeoReach:       "GeoReach",
		MethodSocReach:       "SocReach",
		MethodThreeDReach:    "3DReach",
		MethodThreeDReachRev: "3DReach-Rev",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(42).String() == "" {
		t.Error("unknown method String empty")
	}
	if MethodSocReach.SupportsMBR() || MethodGeoReach.SupportsMBR() {
		t.Error("SupportsMBR wrong for SocReach/GeoReach")
	}
	if !MethodThreeDReach.SupportsMBR() || !MethodSpaReachBFL.SupportsMBR() {
		t.Error("SupportsMBR wrong for 3DReach/SpaReach")
	}
}

func TestMemoryAccountingMBRCostsMore(t *testing.T) {
	// Table 4: the MBR-based variant increases space for the spatial
	// indexes that switch from points to rectangles/boxes. Use a network
	// whose SCCs contain several spatial vertices.
	rng := rand.New(rand.NewSource(131))
	net := spatialCycleNetwork(rng, 200)
	prep := dataset.Prepare(net)
	for _, m := range []Method{MethodSpaReachINT, MethodThreeDReach} {
		rep, err := BuildMethod(prep, m, BuildOptions{Policy: dataset.Replicate})
		if err != nil {
			t.Fatal(err)
		}
		mbr, err := BuildMethod(prep, m, BuildOptions{Policy: dataset.MBR})
		if err != nil {
			t.Fatal(err)
		}
		// Per-entry accounting is richer for boxes; with many replicated
		// points the MBR variant may store fewer entries, so compare the
		// per-entry leaf cost instead of absolute totals only when entry
		// counts match. At minimum both must be positive.
		if rep.Bytes <= 0 || mbr.Bytes <= 0 {
			t.Errorf("%v: non-positive index sizes %d / %d", m, rep.Bytes, mbr.Bytes)
		}
	}
}
