package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

// dynamicMirror re-creates the ground truth network from scratch so the
// dynamic engine can be validated after every batch of updates.
type dynamicMirror struct {
	edges   [][2]int
	spatial []bool
	points  []geom.Point
}

func newDynamicMirror(net *dataset.Network) *dynamicMirror {
	m := &dynamicMirror{
		spatial: append([]bool(nil), net.Spatial...),
		points:  append([]geom.Point(nil), net.Points...),
	}
	net.Graph.Edges(func(u, v int) { m.edges = append(m.edges, [2]int{u, v}) })
	return m
}

func (m *dynamicMirror) network() *dataset.Network {
	return &dataset.Network{
		Name:    "mirror",
		Graph:   graph.FromEdges(len(m.spatial), m.edges),
		Spatial: m.spatial,
		Points:  m.points,
	}
}

func TestDynamicThreeDReachInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 8; trial++ {
		net := randomNetwork(rng, 5+rng.Intn(15), 2+rng.Intn(10), true)
		prep := dataset.Prepare(net)
		e := NewDynamicThreeDReach(prep, ThreeDOptions{})
		m := newDynamicMirror(net)

		verify := func(step int) {
			truth := NewNaiveBFS(m.network())
			for q := 0; q < 10; q++ {
				v := rng.Intn(len(m.spatial))
				r := randomRegion(rng)
				want := truth.RangeReach(v, r)
				if got := e.RangeReach(v, r); got != want {
					t.Fatalf("trial %d step %d: RangeReach(%d, %v) = %v, want %v",
						trial, step, v, r, got, want)
				}
			}
		}
		verify(-1)

		for step := 0; step < 30; step++ {
			switch rng.Intn(5) {
			case 0:
				u := e.AddUser()
				m.spatial = append(m.spatial, false)
				m.points = append(m.points, geom.Point{})
				if u != len(m.spatial)-1 {
					t.Fatal("AddUser id mismatch")
				}
			case 1:
				p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				v := e.AddVenue(p.X, p.Y)
				m.spatial = append(m.spatial, true)
				m.points = append(m.points, p)
				if v != len(m.spatial)-1 {
					t.Fatal("AddVenue id mismatch")
				}
			default:
				u, v := rng.Intn(len(m.spatial)), rng.Intn(len(m.spatial))
				if err := e.AddEdge(u, v); err == nil {
					m.edges = append(m.edges, [2]int{u, v})
				}
				// Rejected edges (would merge components) are simply not
				// mirrored; correctness of the remaining network is what
				// matters.
			}
			if step%6 == 0 {
				verify(step)
			}
		}
		verify(999)
	}
}

func TestDynamicThreeDReachCycleRejection(t *testing.T) {
	// Two singleton users: 0 -> 1 accepted, then 1 -> 0 must be rejected.
	net := &dataset.Network{
		Name:    "pair",
		Graph:   graph.FromEdges(2, nil),
		Spatial: []bool{false, false},
		Points:  make([]geom.Point, 2),
	}
	e := NewDynamicThreeDReach(dataset.Prepare(net), ThreeDOptions{})
	if err := e.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdge(1, 0); err == nil {
		t.Error("cycle-creating edge accepted")
	}
	if err := e.AddEdge(0, 7); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestDynamicThreeDReachIntraSCCEdgeNoOp(t *testing.T) {
	// An edge between two members of the same SCC must be accepted as a
	// no-op (it cannot change reachability).
	net := &dataset.Network{
		Name:    "scc",
		Graph:   graph.FromEdges(3, [][2]int{{0, 1}, {1, 0}, {1, 2}}),
		Spatial: []bool{false, false, true},
		Points:  []geom.Point{{}, {}, geom.Pt(5, 5)},
	}
	e := NewDynamicThreeDReach(dataset.Prepare(net), ThreeDOptions{})
	if err := e.AddEdge(1, 0); err != nil {
		t.Fatalf("intra-SCC edge rejected: %v", err)
	}
	if !e.RangeReach(0, geom.NewRect(0, 0, 10, 10)) {
		t.Error("query broken after no-op edge")
	}
}

func TestDynamicThreeDReachGrowsFromEmpty(t *testing.T) {
	// Start from a single-vertex network and build a small geosocial
	// graph entirely through updates.
	net := &dataset.Network{
		Name:    "seed",
		Graph:   graph.FromEdges(1, nil),
		Spatial: []bool{false},
		Points:  make([]geom.Point, 1),
	}
	e := NewDynamicThreeDReach(dataset.Prepare(net), ThreeDOptions{})
	alice := 0
	bob := e.AddUser()
	cafe := e.AddVenue(10, 10)
	gym := e.AddVenue(90, 90)

	if e.RangeReach(alice, geom.NewRect(0, 0, 100, 100)) {
		t.Error("alice reaches venues before any edges")
	}
	if err := e.AddEdge(alice, bob); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdge(bob, cafe); err != nil {
		t.Fatal(err)
	}
	if !e.RangeReach(alice, geom.NewRect(0, 0, 20, 20)) {
		t.Error("alice should reach the cafe via bob")
	}
	if e.RangeReach(alice, geom.NewRect(80, 80, 100, 100)) {
		t.Error("alice should not reach the gym yet")
	}
	if err := e.AddEdge(alice, gym); err != nil {
		t.Fatal(err)
	}
	if !e.RangeReach(alice, geom.NewRect(80, 80, 100, 100)) {
		t.Error("alice should reach the gym directly")
	}
	if e.RangeReach(bob, geom.NewRect(80, 80, 100, 100)) {
		t.Error("bob should not reach the gym")
	}
	if e.MemoryBytes() <= 0 || e.Name() == "" || e.NumVertices() != 4 {
		t.Error("engine metadata wrong")
	}
}

// TestDynamicOverlayRebuild crosses the overlay flush threshold so the
// base tree is rebuilt mid-stream, and checks that answers — live and
// through snapshots taken before the rebuild — stay correct throughout.
func TestDynamicOverlayRebuild(t *testing.T) {
	net := &dataset.Network{
		Name:    "seed",
		Graph:   graph.FromEdges(1, nil),
		Spatial: []bool{false},
		Points:  make([]geom.Point, 1),
	}
	e := NewDynamicThreeDReach(dataset.Prepare(net), ThreeDOptions{})
	user := 0

	var snaps []*DynamicSnapshot
	for i := 0; i < 3*dynOverlayMin; i++ {
		x := float64(i % 100)
		y := float64(i / 100)
		v := e.AddVenue(x, y)
		if err := e.AddEdge(user, v); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			snaps = append(snaps, e.Snapshot())
		}
		// Every added venue must be findable right away, across the
		// overlay/base boundary.
		if !e.RangeReach(user, geom.NewRect(x, y, x, y)) {
			t.Fatalf("venue %d at (%g,%g) not reachable after insert", i, x, y)
		}
	}
	// Snapshots remain frozen at their capture sizes.
	for si, s := range snaps {
		if s.NumVertices() >= e.NumVertices() {
			t.Errorf("snapshot %d not frozen: %d vertices vs live %d", si, s.NumVertices(), e.NumVertices())
		}
		// A venue added before the capture stays visible in the snapshot.
		if !s.RangeReach(user, geom.NewRect(0, 0, 0, 0)) {
			t.Errorf("snapshot %d lost venue at origin", si)
		}
	}
}
