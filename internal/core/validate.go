package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/labeling"
)

// ValidateEngine deep-checks the structural invariants of an engine:
// interval labelings (post-order bijection, well-formed and properly
// nested label sets, acyclic condensation) and spatial indexes (R-tree
// MBR containment and balance, k-d ordering). It returns nil for a
// well-formed engine and a descriptive error naming the engine and the
// first violated invariant otherwise.
//
// GeoReach dispatches to the SPA-Graph's own Validate; engines whose
// internals are opaque at this layer (the non-interval reachability
// indexes of SpaReach) validate what is visible — their spatial side —
// and trust their own package tests for the rest.
func ValidateEngine(e Engine) error {
	switch eng := e.(type) {
	case *ThreeDReach:
		if err := check.Labeling(eng.prep.DAG, eng.l); err != nil {
			return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
		}
		if err := validatePointIndex3(eng.points); err != nil {
			return fmt.Errorf("core: %s point index: %w", eng.Name(), err)
		}
		if eng.boxes != nil {
			if err := eng.boxes.Validate(); err != nil {
				return fmt.Errorf("core: %s box index: %w", eng.Name(), err)
			}
		}
	case *ThreeDReachRev:
		// The labeling is built over the reversed condensation.
		if err := check.Labeling(eng.prep.DAG.Reverse(), eng.rev); err != nil {
			return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
		}
		if eng.tree != nil {
			if err := eng.tree.Validate(); err != nil {
				return fmt.Errorf("core: %s segment index: %w", eng.Name(), err)
			}
		}
	case *SocReach:
		if err := check.Labeling(eng.prep.DAG, eng.l); err != nil {
			return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
		}
	case *SpaReach:
		if eng.tree != nil {
			if err := eng.tree.Validate(); err != nil {
				return fmt.Errorf("core: %s spatial index: %w", eng.Name(), err)
			}
		}
		if il, ok := eng.reach.(interface{ Labeling() *labeling.Labeling }); ok {
			if err := check.Labeling(eng.prep.DAG, il.Labeling()); err != nil {
				return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
			}
		}
	case *GeoReach:
		if err := eng.idx.Validate(); err != nil {
			return fmt.Errorf("core: %s SPA-Graph: %w", eng.Name(), err)
		}
	case *Auto:
		for _, m := range eng.members {
			if err := ValidateEngine(m); err != nil {
				return fmt.Errorf("core: Auto member: %w", err)
			}
		}
	}
	// NaiveBFS and unknown engines: nothing checkable here.
	return nil
}

// validatePointIndex3 dispatches to the concrete 3D point backend.
func validatePointIndex3(p pointIndex3) error {
	switch b := p.(type) {
	case rtreeIndex:
		return b.t.Validate()
	case kdtreeIndex:
		return b.t.Validate()
	}
	// The grid backend has no ordering invariant to check.
	return nil
}
