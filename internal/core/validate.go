package core

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/labeling"
)

// ValidateEngine deep-checks the structural invariants of an engine:
// interval labelings (post-order bijection, well-formed and properly
// nested label sets, acyclic condensation) and spatial indexes (R-tree
// MBR containment and balance, k-d ordering). It returns nil for a
// well-formed engine and a descriptive error naming the engine and the
// first violated invariant otherwise.
//
// GeoReach dispatches to the SPA-Graph's own Validate; engines whose
// internals are opaque at this layer (the non-interval reachability
// indexes of SpaReach) validate what is visible — their spatial side —
// and trust their own package tests for the rest.
func ValidateEngine(e Engine) error {
	switch eng := e.(type) {
	case *ThreeDReach:
		if err := check.Labeling(eng.prep.DAG, eng.l); err != nil {
			return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
		}
		if err := validatePointIndex3(eng.points); err != nil {
			return fmt.Errorf("core: %s point index: %w", eng.Name(), err)
		}
		if eng.boxes != nil {
			if err := eng.boxes.Validate(); err != nil {
				return fmt.Errorf("core: %s box index: %w", eng.Name(), err)
			}
		}
	case *ThreeDReachRev:
		// The labeling is built over the reversed condensation.
		if err := check.Labeling(eng.prep.DAG.Reverse(), eng.rev); err != nil {
			return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
		}
		if eng.tree != nil {
			if err := eng.tree.Validate(); err != nil {
				return fmt.Errorf("core: %s segment index: %w", eng.Name(), err)
			}
		}
	case *SocReach:
		if err := check.Labeling(eng.prep.DAG, eng.l); err != nil {
			return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
		}
	case *SpaReach:
		if eng.tree != nil {
			if err := eng.tree.Validate(); err != nil {
				return fmt.Errorf("core: %s spatial index: %w", eng.Name(), err)
			}
		}
		if il, ok := eng.reach.(interface{ Labeling() *labeling.Labeling }); ok {
			if err := check.Labeling(eng.prep.DAG, il.Labeling()); err != nil {
				return fmt.Errorf("core: %s labeling: %w", eng.Name(), err)
			}
		}
	case *GeoReach:
		if err := eng.idx.Validate(); err != nil {
			return fmt.Errorf("core: %s SPA-Graph: %w", eng.Name(), err)
		}
	case *Auto:
		for _, m := range eng.members {
			if err := ValidateEngine(m); err != nil {
				return fmt.Errorf("core: Auto member: %w", err)
			}
		}
	case *DynamicThreeDReach:
		return eng.Validate()
	}
	// NaiveBFS and unknown engines: nothing checkable here.
	return nil
}

// validatePointIndex3 dispatches to the concrete 3D point backend.
func validatePointIndex3(p pointIndex3) error {
	switch b := p.(type) {
	case rtreeIndex:
		return b.t.Validate()
	case kdtreeIndex:
		return b.t.Validate()
	}
	// The grid backend has no ordering invariant to check.
	return nil
}

// Validate deep-checks the dynamic engine: the incremental labeling
// (bijection, label nesting, acyclicity of the absorbed graph), the
// base R-tree, and the bookkeeping tying them together — every spatial
// entry is split between base and overlay exactly once, component ids
// are in range, and each entry's z coordinate equals the post-order
// number of its vertex's component.
func (e *DynamicThreeDReach) Validate() error {
	if err := check.Dynamic(e.dl); err != nil {
		return fmt.Errorf("core: 3DReach-Dynamic labeling: %w", err)
	}
	if err := e.base.Validate(); err != nil {
		return fmt.Errorf("core: 3DReach-Dynamic base tree: %w", err)
	}
	if got := e.base.Len() + len(e.overlay); got != len(e.entries) {
		return fmt.Errorf("core: 3DReach-Dynamic: base %d + overlay %d entries != total %d",
			e.base.Len(), len(e.overlay), len(e.entries))
	}
	if len(e.comp) != e.n {
		return fmt.Errorf("core: 3DReach-Dynamic: %d component ids for %d vertices", len(e.comp), e.n)
	}
	nc := e.dl.NumVertices()
	for v, c := range e.comp {
		if c < 0 || int(c) >= nc {
			return fmt.Errorf("core: 3DReach-Dynamic: vertex %d maps to component %d outside [0,%d)", v, c, nc)
		}
	}
	for i, ent := range e.entries {
		v := int(ent.ID)
		if v < 0 || v >= e.n {
			return fmt.Errorf("core: 3DReach-Dynamic: entry %d names vertex %d outside [0,%d)", i, v, e.n)
		}
		want := float64(e.dl.PostOf(int(e.comp[v])))
		if ent.Box.Min.Z != want || ent.Box.Max.Z != want {
			return fmt.Errorf("core: 3DReach-Dynamic: entry %d (vertex %d) has z [%g,%g], want post %g",
				i, v, ent.Box.Min.Z, ent.Box.Max.Z, want)
		}
	}
	return nil
}

// Validate deep-checks a published snapshot: the captured labeling view
// and base tree, and the same component and z-coordinate bookkeeping as
// the live engine, restricted to what the snapshot carries.
func (s *DynamicSnapshot) Validate() error {
	if err := check.View(s.view); err != nil {
		return fmt.Errorf("core: snapshot labeling: %w", err)
	}
	if err := s.base.Validate(); err != nil {
		return fmt.Errorf("core: snapshot base tree: %w", err)
	}
	if len(s.comp) != s.n {
		return fmt.Errorf("core: snapshot: %d component ids for %d vertices", len(s.comp), s.n)
	}
	nc := s.view.NumVertices()
	for v, c := range s.comp {
		if c < 0 || int(c) >= nc {
			return fmt.Errorf("core: snapshot: vertex %d maps to component %d outside [0,%d)", v, c, nc)
		}
	}
	for i, ent := range s.overlay {
		v := int(ent.ID)
		if v < 0 || v >= s.n {
			return fmt.Errorf("core: snapshot: overlay entry %d names vertex %d outside [0,%d)", i, v, s.n)
		}
		want := float64(s.view.PostOf(int(s.comp[v])))
		if ent.Box.Min.Z != want || ent.Box.Max.Z != want {
			return fmt.Errorf("core: snapshot: overlay entry %d (vertex %d) has z [%g,%g], want post %g",
				i, v, ent.Box.Min.Z, ent.Box.Max.Z, want)
		}
	}
	return nil
}
