package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bfl"
	"repro/internal/dataset"
	"repro/internal/flatbuf"
	"repro/internal/georeach"
	"repro/internal/labeling"
)

// Engine persistence: SaveEngine serializes the expensive index state of
// an engine (interval labels, BFL filters or the SPA-Graph); LoadEngine
// rebuilds the full engine over the same prepared network, bulk-loading
// the spatial structures from the network — which is cheap compared to
// labeling construction. The Feline/PLL/GRAIL variants are not
// persisted: their builds are fast relative to loading their state.
//
// Format: magic "RRIX" | version u8 | method u8 | policy u8 | payload.
// The Auto composite nests: its payload is a member count, the members'
// own tagged sections (each a complete header + payload, so the loader
// dispatches on the embedded method byte), and the planner's learned
// cost coefficients.

var engineMagic = [4]byte{'R', 'R', 'I', 'X'}

const engineVersion = 1

// ErrNotPersistable reports an engine type without a save format.
var ErrNotPersistable = fmt.Errorf("core: engine is not persistable")

// SaveEngine writes e to w in the current (v2 flat) format. Supported:
// ThreeDReach, ThreeDReachRev, SocReach, SpaReach-BFL, SpaReach-INT,
// GeoReach and Auto composites of those; others return
// ErrNotPersistable. On a big-endian host — which cannot emit the
// little-endian flat image — it falls back to the v1 stream, which both
// loaders accept everywhere.
func SaveEngine(w io.Writer, e Engine) error {
	if !flatbuf.LittleEndian() {
		return SaveEngineV1(w, e)
	}
	return saveEngineV2(w, e)
}

// SaveEngineV1 writes e in the legacy streaming format, kept for
// compatibility fixtures and big-endian hosts. LoadEngine reads both.
func SaveEngineV1(w io.Writer, e Engine) error {
	bw := bufio.NewWriter(w)
	if err := saveEngineTo(bw, e); err != nil {
		return err
	}
	return bw.Flush()
}

// saveEngineTo appends e's tagged section to bw. Composite engines
// recurse, writing each member as a complete nested section.
func saveEngineTo(bw *bufio.Writer, e Engine) error {
	writeHeader := func(m Method, policy dataset.SCCPolicy) error {
		if err := binary.Write(bw, binary.LittleEndian, engineMagic); err != nil {
			return err
		}
		return binary.Write(bw, binary.LittleEndian,
			[3]uint8{engineVersion, uint8(m), uint8(policy)})
	}

	var err error
	switch eng := e.(type) {
	case *ThreeDReach:
		if err = writeHeader(MethodThreeDReach, eng.policy); err == nil {
			_, err = eng.l.WriteTo(bw)
		}
	case *ThreeDReachRev:
		if err = writeHeader(MethodThreeDReachRev, eng.policy); err == nil {
			_, err = eng.rev.WriteTo(bw)
		}
	case *SocReach:
		flags := uint8(0)
		if eng.post != nil {
			flags = 1
		}
		if err = writeHeader(MethodSocReach, dataset.Replicate); err == nil {
			if err = binary.Write(bw, binary.LittleEndian, flags); err == nil {
				_, err = eng.l.WriteTo(bw)
			}
		}
	case *GeoReach:
		if err = writeHeader(MethodGeoReach, dataset.Replicate); err == nil {
			_, err = eng.idx.WriteTo(bw)
		}
	case *SpaReach:
		switch reach := eng.reach.(type) {
		case *labeling.Labeling:
			if err = writeHeader(MethodSpaReachINT, eng.policy); err == nil {
				_, err = reach.WriteTo(bw)
			}
		case *bfl.Index:
			if err = writeHeader(MethodSpaReachBFL, eng.policy); err == nil {
				_, err = reach.WriteTo(bw)
			}
		default:
			return fmt.Errorf("%w: SpaReach backend %T", ErrNotPersistable, reach)
		}
	case *Auto:
		if err = writeHeader(MethodAuto, eng.policy); err != nil {
			break
		}
		if err = binary.Write(bw, binary.LittleEndian, uint8(len(eng.members))); err != nil {
			break
		}
		for i, member := range eng.members {
			if err = saveEngineTo(bw, member); err != nil {
				return fmt.Errorf("auto member %v: %w", eng.methods[i], err)
			}
		}
		for i := range eng.members {
			if err = binary.Write(bw, binary.LittleEndian,
				math.Float64bits(eng.pl.Model().Coef(i))); err != nil {
				break
			}
		}
	default:
		return fmt.Errorf("%w: %T", ErrNotPersistable, e)
	}
	if err != nil {
		return fmt.Errorf("core: saving engine: %w", err)
	}
	return nil
}

// LoadEngine reads an engine written by SaveEngine — either format,
// sniffed from the magic — and attaches it to prep, which must describe
// the same network the engine was built over. The options supply the
// spatial-side knobs (fan-out, backend); the persisted reachability
// state is used as-is. v2 images decode into one aligned buffer and
// overlay typed columns on it; see OpenMappedEngine for the zero-copy
// path.
func LoadEngine(r io.Reader, prep *dataset.Prepared, opts BuildOptions) (BuildResult, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && bytes.Equal(head, flatbufMagic()) {
		img, err := flatbuf.ReadImage(br)
		if err != nil {
			return BuildResult{}, err
		}
		return loadEngineV2(img, prep, opts)
	}
	return loadEngineFrom(br, prep, opts)
}

func flatbufMagic() []byte { return flatbuf.Magic[:] }

// loadEngineFrom reads one tagged engine section from br. Composite
// sections recurse over the same reader, so nested members consume
// exactly their own bytes.
func loadEngineFrom(br *bufio.Reader, prep *dataset.Prepared, opts BuildOptions) (BuildResult, error) {
	var magic [4]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return BuildResult{}, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != engineMagic {
		return BuildResult{}, fmt.Errorf("core: bad magic %q", magic)
	}
	var header [3]uint8
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return BuildResult{}, fmt.Errorf("core: reading header: %w", err)
	}
	if header[0] != engineVersion {
		return BuildResult{}, fmt.Errorf("core: unsupported version %d", header[0])
	}
	m := Method(header[1])
	policy := dataset.SCCPolicy(header[2])

	checkSize := func(l *labeling.Labeling) error {
		if l.NumVertices() != prep.NumComponents() {
			return fmt.Errorf("core: labeling has %d vertices, network has %d components",
				l.NumVertices(), prep.NumComponents())
		}
		return nil
	}

	var e Engine
	switch m {
	case MethodThreeDReach:
		l, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(l); err != nil {
			return BuildResult{}, err
		}
		to := opts.ThreeD
		to.Policy = policy
		e = NewThreeDReachWithLabeling(prep, l, to)
	case MethodThreeDReachRev:
		rev, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(rev); err != nil {
			return BuildResult{}, err
		}
		to := opts.ThreeD
		to.Policy = policy
		e = NewThreeDReachRevWithLabeling(prep, rev, to)
	case MethodSocReach:
		var flags uint8
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return BuildResult{}, fmt.Errorf("core: reading flags: %w", err)
		}
		l, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(l); err != nil {
			return BuildResult{}, err
		}
		so := opts.SocReach
		so.UseBPTree = flags&1 != 0
		e = NewSocReachWithLabeling(prep, l, so)
	case MethodSpaReachINT:
		l, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(l); err != nil {
			return BuildResult{}, err
		}
		so := opts.SpaReach
		so.Policy = policy
		e = newSpaReach("SpaReach-INT", prep, l, so)
	case MethodSpaReachBFL:
		idx, err := bfl.Read(prep.DAG, br)
		if err != nil {
			return BuildResult{}, err
		}
		so := opts.SpaReach
		so.Policy = policy
		e = newSpaReach("SpaReach-BFL", prep, idx, so)
	case MethodGeoReach:
		idx, err := georeach.Read(prep, br)
		if err != nil {
			return BuildResult{}, err
		}
		e = &GeoReach{idx: idx}
	case MethodAuto:
		auto, err := loadAuto(br, prep, opts, policy)
		if err != nil {
			return BuildResult{}, err
		}
		e = auto
	default:
		return BuildResult{}, fmt.Errorf("core: method %v is not persistable", m)
	}
	return BuildResult{
		Engine: e,
		Method: m,
		Policy: policy,
		Bytes:  e.MemoryBytes(),
	}, nil
}

// loadAuto reads the composite payload: the member sections, then the
// learned cost coefficients. Calibration is skipped — the persisted
// coefficients carry what the previous process learned.
func loadAuto(br *bufio.Reader, prep *dataset.Prepared, opts BuildOptions, policy dataset.SCCPolicy) (*Auto, error) {
	var n uint8
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("core: reading auto member count: %w", err)
	}
	if n == 0 || int(n) > maxAutoMembers() {
		return nil, fmt.Errorf("core: auto member count %d out of range [1,%d]", n, maxAutoMembers())
	}
	methods := make([]Method, n)
	engines := make([]Engine, n)
	for i := range engines {
		res, err := loadEngineFrom(br, prep, opts)
		if err != nil {
			return nil, fmt.Errorf("core: auto member %d: %w", i, err)
		}
		if res.Method == MethodAuto {
			return nil, fmt.Errorf("core: auto member %d is itself an auto composite", i)
		}
		methods[i] = res.Method
		engines[i] = res.Engine
	}
	coefs := make([]float64, n)
	for i := range coefs {
		var bits uint64
		if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("core: reading auto coefficients: %w", err)
		}
		coefs[i] = math.Float64frombits(bits)
	}

	a := assembleAuto(prep, policy, methods, engines, opts.Auto, harvestForward(prep, opts, engines))
	for i, c := range coefs {
		a.pl.Model().SetCoef(i, c)
	}
	return a, nil
}

// harvestForward recovers a forward labeling of prep.DAG for the
// planner's estimator from one of the loaded members, falling back to a
// fresh build when no member carries one. ThreeDReachRev is excluded:
// its labeling is over the reversed DAG.
func harvestForward(prep *dataset.Prepared, opts BuildOptions, engines []Engine) *labeling.Labeling {
	for _, e := range engines {
		switch eng := e.(type) {
		case *SocReach:
			return eng.l
		case *ThreeDReach:
			return eng.l
		case *SpaReach:
			if l, ok := eng.reach.(*labeling.Labeling); ok {
				return l
			}
		}
	}
	return labeling.Build(prep.DAG, labeling.Options{Forest: opts.SocReach.Forest})
}
