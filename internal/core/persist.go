package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bfl"
	"repro/internal/dataset"
	"repro/internal/georeach"
	"repro/internal/labeling"
)

// Engine persistence: SaveEngine serializes the expensive index state of
// an engine (interval labels, BFL filters or the SPA-Graph); LoadEngine
// rebuilds the full engine over the same prepared network, bulk-loading
// the spatial structures from the network — which is cheap compared to
// labeling construction. The Feline/PLL/GRAIL variants are not
// persisted: their builds are fast relative to loading their state.
//
// Format: magic "RRIX" | version u8 | method u8 | policy u8 | payload.

var engineMagic = [4]byte{'R', 'R', 'I', 'X'}

const engineVersion = 1

// ErrNotPersistable reports an engine type without a save format.
var ErrNotPersistable = fmt.Errorf("core: engine is not persistable")

// SaveEngine writes e to w. Supported: ThreeDReach, ThreeDReachRev,
// SocReach, SpaReach-BFL, SpaReach-INT and GeoReach; others return
// ErrNotPersistable.
func SaveEngine(w io.Writer, e Engine) error {
	bw := bufio.NewWriter(w)
	writeHeader := func(m Method, policy dataset.SCCPolicy) error {
		if err := binary.Write(bw, binary.LittleEndian, engineMagic); err != nil {
			return err
		}
		return binary.Write(bw, binary.LittleEndian,
			[3]uint8{engineVersion, uint8(m), uint8(policy)})
	}

	var err error
	switch eng := e.(type) {
	case *ThreeDReach:
		if err = writeHeader(MethodThreeDReach, eng.policy); err == nil {
			_, err = eng.l.WriteTo(bw)
		}
	case *ThreeDReachRev:
		if err = writeHeader(MethodThreeDReachRev, eng.policy); err == nil {
			_, err = eng.rev.WriteTo(bw)
		}
	case *SocReach:
		flags := uint8(0)
		if eng.post != nil {
			flags = 1
		}
		if err = writeHeader(MethodSocReach, dataset.Replicate); err == nil {
			if err = binary.Write(bw, binary.LittleEndian, flags); err == nil {
				_, err = eng.l.WriteTo(bw)
			}
		}
	case *GeoReach:
		if err = writeHeader(MethodGeoReach, dataset.Replicate); err == nil {
			_, err = eng.idx.WriteTo(bw)
		}
	case *SpaReach:
		switch reach := eng.reach.(type) {
		case *labeling.Labeling:
			if err = writeHeader(MethodSpaReachINT, eng.policy); err == nil {
				_, err = reach.WriteTo(bw)
			}
		case *bfl.Index:
			if err = writeHeader(MethodSpaReachBFL, eng.policy); err == nil {
				_, err = reach.WriteTo(bw)
			}
		default:
			return fmt.Errorf("%w: SpaReach backend %T", ErrNotPersistable, reach)
		}
	default:
		return fmt.Errorf("%w: %T", ErrNotPersistable, e)
	}
	if err != nil {
		return fmt.Errorf("core: saving engine: %w", err)
	}
	return bw.Flush()
}

// LoadEngine reads an engine written by SaveEngine and attaches it to
// prep, which must describe the same network the engine was built over.
// The options supply the spatial-side knobs (fan-out, backend); the
// persisted reachability state is used as-is.
func LoadEngine(r io.Reader, prep *dataset.Prepared, opts BuildOptions) (BuildResult, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return BuildResult{}, fmt.Errorf("core: reading magic: %w", err)
	}
	if magic != engineMagic {
		return BuildResult{}, fmt.Errorf("core: bad magic %q", magic)
	}
	var header [3]uint8
	if err := binary.Read(br, binary.LittleEndian, &header); err != nil {
		return BuildResult{}, fmt.Errorf("core: reading header: %w", err)
	}
	if header[0] != engineVersion {
		return BuildResult{}, fmt.Errorf("core: unsupported version %d", header[0])
	}
	m := Method(header[1])
	policy := dataset.SCCPolicy(header[2])

	checkSize := func(l *labeling.Labeling) error {
		if l.NumVertices() != prep.NumComponents() {
			return fmt.Errorf("core: labeling has %d vertices, network has %d components",
				l.NumVertices(), prep.NumComponents())
		}
		return nil
	}

	var e Engine
	switch m {
	case MethodThreeDReach:
		l, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(l); err != nil {
			return BuildResult{}, err
		}
		to := opts.ThreeD
		to.Policy = policy
		e = NewThreeDReachWithLabeling(prep, l, to)
	case MethodThreeDReachRev:
		rev, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(rev); err != nil {
			return BuildResult{}, err
		}
		to := opts.ThreeD
		to.Policy = policy
		e = NewThreeDReachRevWithLabeling(prep, rev, to)
	case MethodSocReach:
		var flags uint8
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return BuildResult{}, fmt.Errorf("core: reading flags: %w", err)
		}
		l, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(l); err != nil {
			return BuildResult{}, err
		}
		so := opts.SocReach
		so.UseBPTree = flags&1 != 0
		e = NewSocReachWithLabeling(prep, l, so)
	case MethodSpaReachINT:
		l, err := labeling.ReadLabeling(br)
		if err != nil {
			return BuildResult{}, err
		}
		if err := checkSize(l); err != nil {
			return BuildResult{}, err
		}
		so := opts.SpaReach
		so.Policy = policy
		e = newSpaReach("SpaReach-INT", prep, l, so)
	case MethodSpaReachBFL:
		idx, err := bfl.Read(prep.DAG, br)
		if err != nil {
			return BuildResult{}, err
		}
		so := opts.SpaReach
		so.Policy = policy
		e = newSpaReach("SpaReach-BFL", prep, idx, so)
	case MethodGeoReach:
		idx, err := georeach.Read(prep, br)
		if err != nil {
			return BuildResult{}, err
		}
		e = &GeoReach{idx: idx}
	default:
		return BuildResult{}, fmt.Errorf("core: method %v is not persistable", m)
	}
	return BuildResult{
		Engine: e,
		Method: m,
		Policy: policy,
		Bytes:  e.MemoryBytes(),
	}, nil
}
