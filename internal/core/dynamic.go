package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/labeling"
	"repro/internal/pool"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// dynOverlayMin is the overlay size below which the base tree is never
// rebuilt; past it the rebuild triggers once the overlay reaches an
// eighth of the total entry count, keeping insert cost amortized
// logarithmic while bounding the linear overlay scan per query.
const dynOverlayMin = 128

// DynamicThreeDReach is the updatable variant of 3DReach, realizing the
// paper's future-work direction of handling network updates (§8). It
// combines the incremental interval labeling (labeling.Dynamic) with a
// static-dynamic spatial decomposition: the bulk of the 3D points lives
// in an immutable bulk-loaded R-tree (the base), venues added since the
// last rebuild sit in a small linear overlay, and the base is rebuilt
// from scratch whenever the overlay grows past a fraction of the total.
// Post-order numbers never change once assigned, so base entries remain
// valid forever; queries stay exactly the 3DReach cuboid searches plus a
// bounded overlay scan.
//
// Because the base tree is never mutated after construction — only
// replaced wholesale — Snapshot can publish it by pointer, which is what
// makes cheap immutable snapshots (and thus concurrent serving) possible.
//
// The engine operates on the SCC condensation of the initial network
// (Replicate policy). Edges that would merge two components — i.e.
// create a new cycle — are rejected; re-prepare and rebuild to absorb
// them, as in the static pipeline.
type DynamicThreeDReach struct {
	dl *labeling.Dynamic

	// base is immutable once built: inserts go to overlay, and rebuilds
	// replace the pointer with a tree packed over a private copy of
	// entries (BulkLoad leaves alias their input slice, so published
	// snapshots sharing an old base must never see it re-sorted).
	base    *rtree.Tree[geom.Box3]
	overlay []rtree.Entry[geom.Box3] // venues not yet in base
	entries []rtree.Entry[geom.Box3] // all spatial entries, rebuild input

	hasExtents bool
	fanout     int
	par        int // worker bound for base rebuilds

	// comp maps original vertices (including ones added later) to DAG
	// component ids.
	comp []int32
	n    int // number of original vertices
}

// NewDynamicThreeDReach builds the updatable engine over the prepared
// network.
func NewDynamicThreeDReach(prep *dataset.Prepared, opts ThreeDOptions) *DynamicThreeDReach {
	e := &DynamicThreeDReach{
		dl:         labeling.NewDynamic(prep.DAG, labeling.Options{Forest: opts.Forest}),
		comp:       append([]int32(nil), prep.Comp...),
		n:          prep.Net.NumVertices(),
		hasExtents: prep.Net.HasExtents(),
		fanout:     opts.Fanout,
		par:        opts.Parallelism,
	}
	for v, s := range prep.Net.Spatial {
		if s {
			c := prep.CompOf(v)
			z := float64(e.dl.PostOf(int(c)))
			e.entries = append(e.entries, rtree.Entry[geom.Box3]{
				Box: geom.Box3FromRect(prep.Net.GeometryOf(v), z, z),
				ID:  int32(v),
			})
		}
	}
	e.rebuildBase()
	return e
}

// rebuildBase packs a fresh base tree over a copy of all entries and
// empties the overlay. The copy keeps e.entries private: BulkLoad both
// reorders its input and aliases it from the leaves. The rebuild may use
// a worker pool; its goroutines all join before the new base pointer is
// published, so the single-writer contract is unaffected.
func (e *DynamicThreeDReach) rebuildBase() {
	wp := pool.New(max(e.par, 1))
	e.base = rtree.BulkLoadPool(append([]rtree.Entry[geom.Box3](nil), e.entries...), e.fanout, wp)
	if !e.hasExtents {
		e.base.SetLeafBoundBytes(24)
	}
	e.overlay = nil
}

// NumVertices returns the current number of original vertices.
func (e *DynamicThreeDReach) NumVertices() int { return e.n }

// AddUser appends a social vertex and returns its id.
func (e *DynamicThreeDReach) AddUser() int {
	c := e.dl.AddVertex()
	e.comp = append(e.comp, int32(c))
	e.n++
	return e.n - 1
}

// AddVenue appends a spatial vertex at (x, y) and returns its id.
func (e *DynamicThreeDReach) AddVenue(x, y float64) int {
	c := e.dl.AddVertex()
	e.comp = append(e.comp, int32(c))
	e.n++
	v := e.n - 1
	z := float64(e.dl.PostOf(c))
	entry := rtree.Entry[geom.Box3]{
		Box: geom.Box3FromPoint(geom.Pt3(x, y, z)),
		ID:  int32(v),
	}
	e.entries = append(e.entries, entry)
	e.overlay = append(e.overlay, entry)
	if len(e.overlay) >= dynOverlayMin && len(e.overlay)*8 >= len(e.entries) {
		e.rebuildBase()
	}
	return v
}

// AddEdge inserts the directed edge (u, v) between original vertices —
// a follow or check-in. Edges inside one component are no-ops; edges
// that would create a new cycle are rejected with an error.
func (e *DynamicThreeDReach) AddEdge(u, v int) error {
	if u < 0 || u >= e.n || v < 0 || v >= e.n {
		return fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", u, v, e.n)
	}
	cu, cv := e.comp[u], e.comp[v]
	if cu == cv {
		return nil
	}
	if err := e.dl.AddEdge(int(cu), int(cv)); err != nil {
		// Report the caller's vertex ids, not internal component ids.
		return fmt.Errorf("core: edge (%d,%d) would create a cycle; condense and rebuild", u, v)
	}
	return nil
}

// Name implements Engine.
func (e *DynamicThreeDReach) Name() string { return "3DReach-Dynamic" }

// RangeReach implements Engine with the standard 3DReach evaluation:
// one cuboid query per current label of the query vertex, first against
// the base tree, then against the overlay.
func (e *DynamicThreeDReach) RangeReach(v int, r geom.Rect) bool {
	return e.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine: per-label cuboid searches against
// the base tree accumulate into the spatial stage, and the linear
// overlay scan counts one entry test per overlay venue.
func (e *DynamicThreeDReach) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	if v < 0 || v >= e.n {
		panic(fmt.Sprintf("core: vertex %d out of range [0,%d)", v, e.n))
	}
	for _, iv := range e.dl.Labels(int(e.comp[v])) {
		sp.AddLabels(1)
		q := geom.Box3FromRect(r, float64(iv.Lo), float64(iv.Hi))
		t := sp.Start()
		_, ok := e.base.SearchAnyTraced(q, sp)
		if !ok {
			sp.AddEntries(len(e.overlay))
			for _, entry := range e.overlay {
				if entry.Box.Intersects(q) {
					ok = true
					break
				}
			}
		}
		sp.End(trace.StageSpatial, t)
		if ok {
			return true
		}
	}
	return false
}

// MemoryBytes implements Engine.
func (e *DynamicThreeDReach) MemoryBytes() int64 {
	labels := e.dl.TotalLabels() * 8
	overlay := int64(len(e.overlay)) * 28 // 24-byte point + 4-byte id
	return labels + e.base.MemoryBytes() + overlay + int64(4*len(e.comp))
}

var _ Engine = (*DynamicThreeDReach)(nil)

// DynamicSnapshot is an immutable point-in-time view of a
// DynamicThreeDReach, safe for concurrent use by any number of
// goroutines while the owning engine continues to absorb updates on its
// single writer. Taking one costs O(n) slice-header copies plus a copy
// of the (bounded) overlay; the base R-tree is shared by pointer since
// it is never mutated in place.
type DynamicSnapshot struct {
	view    labeling.View
	base    *rtree.Tree[geom.Box3]
	overlay []rtree.Entry[geom.Box3]
	comp    []int32
	n       int
}

// Snapshot captures the engine's current state.
func (e *DynamicThreeDReach) Snapshot() *DynamicSnapshot {
	return &DynamicSnapshot{
		view:    e.dl.View(),
		base:    e.base,
		overlay: append([]rtree.Entry[geom.Box3](nil), e.overlay...),
		comp:    append([]int32(nil), e.comp...),
		n:       e.n,
	}
}

// NumVertices returns the number of vertices at capture time.
func (s *DynamicSnapshot) NumVertices() int { return s.n }

// RangeReach answers the query against the captured state.
func (s *DynamicSnapshot) RangeReach(v int, r geom.Rect) bool {
	return s.RangeReachTraced(v, r, nil)
}

// RangeReachTraced answers the query against the captured state with
// the same instrumentation as DynamicThreeDReach.RangeReachTraced.
func (s *DynamicSnapshot) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("core: vertex %d out of range [0,%d)", v, s.n))
	}
	for _, iv := range s.view.Labels(int(s.comp[v])) {
		sp.AddLabels(1)
		q := geom.Box3FromRect(r, float64(iv.Lo), float64(iv.Hi))
		t := sp.Start()
		_, ok := s.base.SearchAnyTraced(q, sp)
		if !ok {
			sp.AddEntries(len(s.overlay))
			for _, e := range s.overlay {
				if e.Box.Intersects(q) {
					ok = true
					break
				}
			}
		}
		sp.End(trace.StageSpatial, t)
		if ok {
			return true
		}
	}
	return false
}
