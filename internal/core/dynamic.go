package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/labeling"
	"repro/internal/rtree"
)

// DynamicThreeDReach is the updatable variant of 3DReach, realizing the
// paper's future-work direction of handling network updates (§8). It
// combines the incremental interval labeling (labeling.Dynamic) with the
// R-tree's dynamic inserts: new venues become new 3D points, new edges
// only touch label sets, and queries stay exactly the 3DReach cuboid
// searches — post-order numbers never change once assigned, so existing
// R-tree entries remain valid forever.
//
// The engine operates on the SCC condensation of the initial network
// (Replicate policy). Edges that would merge two components — i.e.
// create a new cycle — are rejected; re-prepare and rebuild to absorb
// them, as in the static pipeline.
type DynamicThreeDReach struct {
	dl   *labeling.Dynamic
	tree *rtree.Tree[geom.Box3]

	// comp maps original vertices (including ones added later) to DAG
	// component ids.
	comp []int32
	n    int // number of original vertices
}

// NewDynamicThreeDReach builds the updatable engine over the prepared
// network.
func NewDynamicThreeDReach(prep *dataset.Prepared, opts ThreeDOptions) *DynamicThreeDReach {
	e := &DynamicThreeDReach{
		dl:   labeling.NewDynamic(prep.DAG, labeling.Options{Forest: opts.Forest}),
		comp: append([]int32(nil), prep.Comp...),
		n:    prep.Net.NumVertices(),
	}
	var entries []rtree.Entry[geom.Box3]
	for v, s := range prep.Net.Spatial {
		if s {
			c := prep.CompOf(v)
			z := float64(e.dl.PostOf(int(c)))
			entries = append(entries, rtree.Entry[geom.Box3]{
				Box: geom.Box3FromRect(prep.Net.GeometryOf(v), z, z),
				ID:  int32(v),
			})
		}
	}
	e.tree = rtree.BulkLoad(entries, opts.Fanout)
	if !prep.Net.HasExtents() {
		e.tree.SetLeafBoundBytes(24)
	}
	return e
}

// NumVertices returns the current number of original vertices.
func (e *DynamicThreeDReach) NumVertices() int { return e.n }

// AddUser appends a social vertex and returns its id.
func (e *DynamicThreeDReach) AddUser() int {
	c := e.dl.AddVertex()
	e.comp = append(e.comp, int32(c))
	e.n++
	return e.n - 1
}

// AddVenue appends a spatial vertex at (x, y) and returns its id.
func (e *DynamicThreeDReach) AddVenue(x, y float64) int {
	c := e.dl.AddVertex()
	e.comp = append(e.comp, int32(c))
	e.n++
	v := e.n - 1
	z := float64(e.dl.PostOf(c))
	e.tree.Insert(rtree.Entry[geom.Box3]{
		Box: geom.Box3FromPoint(geom.Pt3(x, y, z)),
		ID:  int32(v),
	})
	return v
}

// AddEdge inserts the directed edge (u, v) between original vertices —
// a follow or check-in. Edges inside one component are no-ops; edges
// that would create a new cycle are rejected with an error.
func (e *DynamicThreeDReach) AddEdge(u, v int) error {
	if u < 0 || u >= e.n || v < 0 || v >= e.n {
		return fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", u, v, e.n)
	}
	cu, cv := e.comp[u], e.comp[v]
	if cu == cv {
		return nil
	}
	return e.dl.AddEdge(int(cu), int(cv))
}

// Name implements Engine.
func (e *DynamicThreeDReach) Name() string { return "3DReach-Dynamic" }

// RangeReach implements Engine with the standard 3DReach evaluation:
// one cuboid query per current label of the query vertex.
func (e *DynamicThreeDReach) RangeReach(v int, r geom.Rect) bool {
	if v < 0 || v >= e.n {
		panic(fmt.Sprintf("core: vertex %d out of range [0,%d)", v, e.n))
	}
	for _, iv := range e.dl.Labels(int(e.comp[v])) {
		q := geom.Box3FromRect(r, float64(iv.Lo), float64(iv.Hi))
		if _, ok := e.tree.SearchAny(q); ok {
			return true
		}
	}
	return false
}

// MemoryBytes implements Engine.
func (e *DynamicThreeDReach) MemoryBytes() int64 {
	var labels int64
	labels = e.dl.TotalLabels() * 8
	return labels + e.tree.MemoryBytes() + int64(4*len(e.comp))
}

var _ Engine = (*DynamicThreeDReach)(nil)
