package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bfl"
	"repro/internal/dataset"
	"repro/internal/flatbuf"
	"repro/internal/geom"
	"repro/internal/georeach"
	"repro/internal/intervals"
	"repro/internal/labeling"
	"repro/internal/rtree"
)

// Format v2: a single relocatable flatbuf image (see internal/flatbuf)
// whose sections are the engines' structure-of-arrays columns at
// 64-byte-aligned offsets. The same bytes serve two load paths — the
// portable streaming decode (one aligned buffer, one copy) and the
// zero-copy mmap overlay (OpenMappedEngine) — because every section is
// a typed slice cast straight out of the image.
//
// Sections are keyed (owner, kind): owner 0 is the root engine, owners
// 1..n the members of an Auto composite in position order. Each owner
// carries a manifest section (scalar metadata, little-endian packed
// structs) plus the column sections its method needs. The manifest's
// first bytes are {method u8, policy u8, flags u16}; the Auto root
// manifest instead carries the member method list and the planner's
// learned coefficients, and each member's own manifest follows under
// its owner id.
//
// Emission order is fixed (manifest, then columns in kind order, owners
// ascending), columns are canonical (sorted grid keys, BFS tree
// layout), so identical engines serialize to byte-identical images —
// save(load(v2)) round-trips exactly, including from a mapped index,
// whose Save re-encodes from the very slices that alias the map.

// Section kinds of the v2 image.
const (
	secManifest       = 1
	secLabelPost      = 2 // [n]i32 post-order numbers
	secLabelOrder     = 3 // [n]i32 inverse permutation
	secLabelOff       = 4 // [n+1]u64 label-set offsets
	secLabelData      = 5 // [Σ]Interval concatenated label sets
	secBFLHash        = 6 // [n]i32
	secBFLOut         = 7 // [n·words]u64
	secBFLIn          = 8 // [n·words]u64
	secBFLDiscover    = 9 // [n]i32
	secBFLFinish      = 10 // [n]i32
	secTreeNodeBounds = 11 // [nodes·2d]f64
	secTreeNodeMeta   = 12 // [nodes·2]u32
	secTreeEntryBound = 13 // [size·2d]f64
	secTreeEntryIDs   = 14 // [size]i32
	secGeoFlags       = 15 // [2n]u8 {kind, geoB}
	secGeoRMBR        = 16 // [4n]f64
	secGeoGridOff     = 17 // [n+1]u64
	secGeoGridKeys    = 18 // [Σ]u64
)

// Manifest flag bits.
const (
	socFlagBPTree = 1 << 0 // SocReach: rebuild the post-order B+-tree

	threeDFlagExact   = 1 << 0 // 3DReach: box tree holds exact geometries
	threeDFlagBoxes   = 1 << 1 // 3DReach: spatial index is the box tree
	threeDFlagSpatial = 1 << 2 // 3DReach: spatial sections are present
)

// Packed little-endian manifest records (binary.Write lays out fields
// in order with no padding).
type manifestHeader struct {
	Method uint8
	Policy uint8
	Flags  uint16
}

type labelingMeta struct {
	N            uint32
	Uncompressed int64
	Compressed   int64
}

type treeMeta struct {
	MaxEntries     uint32
	Height         uint32
	NumNodes       uint32
	Size           uint32
	LeafBoundBytes uint8
	Dims           uint8
}

type bflMeta struct {
	N     uint32
	Words uint32
}

type geoMeta struct {
	N      uint32
	Levels uint8
	Space  [4]float64
}

// saveEngineV2 writes e as a v2 flat image.
func saveEngineV2(w io.Writer, e Engine) error {
	fw := flatbuf.NewWriter()
	if auto, ok := e.(*Auto); ok {
		var man bytes.Buffer
		mustWrite(&man, manifestHeader{Method: uint8(MethodAuto), Policy: uint8(auto.policy)})
		mustWrite(&man, uint8(len(auto.members)))
		for _, m := range auto.methods {
			mustWrite(&man, uint8(m))
		}
		for i := range auto.members {
			mustWrite(&man, auto.pl.Model().Coef(i))
		}
		fw.Append(0, secManifest, man.Bytes())
		for i, member := range auto.members {
			if err := appendEngineSections(fw, uint32(i+1), member); err != nil {
				return fmt.Errorf("auto member %v: %w", auto.methods[i], err)
			}
		}
	} else if err := appendEngineSections(fw, 0, e); err != nil {
		return err
	}
	if _, err := fw.WriteTo(w); err != nil {
		return fmt.Errorf("core: saving engine: %w", err)
	}
	return nil
}

// mustWrite encodes v into an in-memory buffer; binary.Write on a
// bytes.Buffer with fixed-size data cannot fail.
func mustWrite(b *bytes.Buffer, v any) {
	if err := binary.Write(b, binary.LittleEndian, v); err != nil {
		panic(err)
	}
}

// appendEngineSections adds one engine's manifest and columns under the
// owner id. Composite engines never reach here — saveEngineV2 unrolls
// Auto itself (and the format forbids nesting).
func appendEngineSections(fw *flatbuf.Writer, owner uint32, e Engine) error {
	var man bytes.Buffer
	switch eng := e.(type) {
	case *ThreeDReach:
		flags := uint16(0)
		var f *rtree.Flat[geom.Box3]
		if eng.boxes != nil {
			f = flattenTree(eng.boxes)
			flags |= threeDFlagBoxes | threeDFlagSpatial
			if eng.exactBoxes {
				flags |= threeDFlagExact
			}
		} else if ri, ok := eng.points.(rtreeIndex); ok {
			// Only the R-tree point backend persists; the k-d tree and
			// grid rebuild from the network at load (cheap, and keeps
			// the format free of backend-specific encodings).
			f = flattenTree(ri.t)
			if f != nil {
				flags |= threeDFlagSpatial
			}
		}
		mustWrite(&man, manifestHeader{Method: uint8(MethodThreeDReach), Policy: uint8(eng.policy), Flags: flags})
		mustWrite(&man, labelingMetaOf(eng.l))
		if flags&threeDFlagSpatial != 0 {
			mustWrite(&man, treeMetaOf(f))
		}
		fw.Append(owner, secManifest, man.Bytes())
		if err := appendLabelingSections(fw, owner, eng.l); err != nil {
			return err
		}
		if flags&threeDFlagSpatial != 0 {
			if err := appendTreeSections(fw, owner, f); err != nil {
				return err
			}
		}
	case *ThreeDReachRev:
		f := flattenTree(eng.tree)
		if f == nil {
			return fmt.Errorf("%w: 3DReach-Rev spatial index %T", ErrNotPersistable, eng.tree)
		}
		mustWrite(&man, manifestHeader{Method: uint8(MethodThreeDReachRev), Policy: uint8(eng.policy)})
		mustWrite(&man, labelingMetaOf(eng.rev))
		mustWrite(&man, treeMetaOf(f))
		fw.Append(owner, secManifest, man.Bytes())
		if err := appendLabelingSections(fw, owner, eng.rev); err != nil {
			return err
		}
		if err := appendTreeSections(fw, owner, f); err != nil {
			return err
		}
	case *SocReach:
		flags := uint16(0)
		if eng.post != nil {
			flags |= socFlagBPTree
		}
		mustWrite(&man, manifestHeader{Method: uint8(MethodSocReach), Policy: uint8(dataset.Replicate), Flags: flags})
		mustWrite(&man, labelingMetaOf(eng.l))
		fw.Append(owner, secManifest, man.Bytes())
		if err := appendLabelingSections(fw, owner, eng.l); err != nil {
			return err
		}
	case *GeoReach:
		gm := eng.idx.FlatMeta()
		space := gm.Space
		gflags, rmbr, gridOff, gridKeys := eng.idx.FlatColumns()
		mustWrite(&man, manifestHeader{Method: uint8(MethodGeoReach), Policy: uint8(dataset.Replicate)})
		mustWrite(&man, geoMeta{
			N:      uint32(len(gflags) / 2),
			Levels: uint8(gm.Levels),
			Space:  [4]float64{space.Min.X, space.Min.Y, space.Max.X, space.Max.Y},
		})
		fw.Append(owner, secManifest, man.Bytes())
		fw.Append(owner, secGeoFlags, gflags)
		for _, err := range []error{
			flatbuf.AppendSlice(fw, owner, secGeoRMBR, rmbr),
			flatbuf.AppendSlice(fw, owner, secGeoGridOff, gridOff),
			flatbuf.AppendSlice(fw, owner, secGeoGridKeys, gridKeys),
		} {
			if err != nil {
				return err
			}
		}
	case *SpaReach:
		f := flattenTree(eng.tree)
		if f == nil {
			return fmt.Errorf("%w: SpaReach spatial index %T", ErrNotPersistable, eng.tree)
		}
		switch reach := eng.reach.(type) {
		case *labeling.Labeling:
			mustWrite(&man, manifestHeader{Method: uint8(MethodSpaReachINT), Policy: uint8(eng.policy)})
			mustWrite(&man, labelingMetaOf(reach))
			mustWrite(&man, treeMetaOf(f))
			fw.Append(owner, secManifest, man.Bytes())
			if err := appendLabelingSections(fw, owner, reach); err != nil {
				return err
			}
		case *bfl.Index:
			words, hash, out, in, discover, finish := reach.Flat()
			mustWrite(&man, manifestHeader{Method: uint8(MethodSpaReachBFL), Policy: uint8(eng.policy)})
			mustWrite(&man, bflMeta{N: uint32(len(hash)), Words: uint32(words)})
			mustWrite(&man, treeMetaOf(f))
			fw.Append(owner, secManifest, man.Bytes())
			for _, s := range []error{
				flatbuf.AppendSlice(fw, owner, secBFLHash, hash),
				flatbuf.AppendSlice(fw, owner, secBFLOut, out),
				flatbuf.AppendSlice(fw, owner, secBFLIn, in),
				flatbuf.AppendSlice(fw, owner, secBFLDiscover, discover),
				flatbuf.AppendSlice(fw, owner, secBFLFinish, finish),
			} {
				if s != nil {
					return s
				}
			}
		default:
			return fmt.Errorf("%w: SpaReach backend %T", ErrNotPersistable, reach)
		}
		if err := appendTreeSections(fw, owner, f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: %T", ErrNotPersistable, e)
	}
	return nil
}

func labelingMetaOf(l *labeling.Labeling) labelingMeta {
	return labelingMeta{
		N:            uint32(l.NumVertices()),
		Uncompressed: l.UncompressedCount,
		Compressed:   l.CompressedCount,
	}
}

func appendLabelingSections(fw *flatbuf.Writer, owner uint32, l *labeling.Labeling) error {
	post, order, off, data := l.FlatColumns()
	for _, err := range []error{
		flatbuf.AppendSlice(fw, owner, secLabelPost, post),
		flatbuf.AppendSlice(fw, owner, secLabelOrder, order),
		flatbuf.AppendSlice(fw, owner, secLabelOff, off),
		flatbuf.AppendSlice(fw, owner, secLabelData, data),
	} {
		if err != nil {
			return err
		}
	}
	return nil
}

func treeMetaOf[B rtree.FlatBound[B]](f *rtree.Flat[B]) treeMeta {
	var zero B
	m := f.Meta()
	return treeMeta{
		MaxEntries:     uint32(m.MaxEntries),
		Height:         uint32(m.Height),
		NumNodes:       uint32(f.NumNodes()),
		Size:           uint32(m.Size),
		LeafBoundBytes: uint8(m.LeafBoundBytes),
		Dims:           uint8(zero.Dims()),
	}
}

func appendTreeSections[B rtree.FlatBound[B]](fw *flatbuf.Writer, owner uint32, f *rtree.Flat[B]) error {
	nodeBounds, nodeMeta, entryBounds, entryIDs := f.Raw()
	for _, err := range []error{
		flatbuf.AppendSlice(fw, owner, secTreeNodeBounds, nodeBounds),
		flatbuf.AppendSlice(fw, owner, secTreeNodeMeta, nodeMeta),
		flatbuf.AppendSlice(fw, owner, secTreeEntryBound, entryBounds),
		flatbuf.AppendSlice(fw, owner, secTreeEntryIDs, entryIDs),
	} {
		if err != nil {
			return err
		}
	}
	return nil
}

// flattenTree canonicalizes a Searcher for persistence: pointer trees
// flatten (deterministic BFS), already-flat trees pass through — which
// is what makes saving a mapped index re-emit the mapped bytes rather
// than a stale re-encode. Unknown implementations yield nil.
func flattenTree[B rtree.FlatBound[B]](s rtree.Searcher[B]) *rtree.Flat[B] {
	switch t := s.(type) {
	case *rtree.Tree[B]:
		return rtree.Flatten(t)
	case *rtree.Flat[B]:
		return t
	}
	return nil
}

// loadEngineV2 assembles an engine from an opened image. The image may
// be a decoded copy or a live mmap; either way the engine's columns
// alias img's data, which must outlive the engine.
func loadEngineV2(img *flatbuf.Image, prep *dataset.Prepared, opts BuildOptions) (BuildResult, error) {
	mr, h, err := openManifest(img, 0)
	if err != nil {
		return BuildResult{}, err
	}
	m := Method(h.Method)
	policy := dataset.SCCPolicy(h.Policy)
	var e Engine
	if m == MethodAuto {
		e, err = loadAutoV2(img, mr, prep, opts, policy)
	} else {
		e, err = loadEngineOwnerV2(img, 0, mr, m, policy, h.Flags, prep, opts)
	}
	if err != nil {
		return BuildResult{}, err
	}
	return BuildResult{
		Engine: e,
		Method: m,
		Policy: policy,
		Bytes:  e.MemoryBytes(),
	}, nil
}

// openManifest reads an owner's manifest header and returns a reader
// positioned at the method-specific payload.
func openManifest(img *flatbuf.Image, owner uint32) (*bytes.Reader, manifestHeader, error) {
	var h manifestHeader
	man, ok := img.Section(owner, secManifest)
	if !ok {
		return nil, h, fmt.Errorf("core: %w: missing manifest for owner %d", flatbuf.ErrFormat, owner)
	}
	mr := bytes.NewReader(man)
	if err := binary.Read(mr, binary.LittleEndian, &h); err != nil {
		return nil, h, fmt.Errorf("core: %w: manifest of owner %d: %v", flatbuf.ErrFormat, owner, err)
	}
	return mr, h, nil
}

// readManifest decodes one packed record from the manifest reader.
func readManifest(mr *bytes.Reader, owner uint32, v any) error {
	if err := binary.Read(mr, binary.LittleEndian, v); err != nil {
		return fmt.Errorf("core: %w: manifest of owner %d: %v", flatbuf.ErrFormat, owner, err)
	}
	return nil
}

// manifestDone rejects trailing manifest bytes — a manifest longer than
// its method's record set is corruption, not forward compatibility
// (that is what the version field is for).
func manifestDone(mr *bytes.Reader, owner uint32) error {
	if mr.Len() != 0 {
		return fmt.Errorf("core: %w: %d trailing manifest bytes for owner %d",
			flatbuf.ErrFormat, mr.Len(), owner)
	}
	return nil
}

// castSection overlays a typed slice on an owner's section.
func castSection[T any](img *flatbuf.Image, owner, kind uint32) ([]T, error) {
	b, ok := img.Section(owner, kind)
	if !ok {
		return nil, fmt.Errorf("core: %w: missing section owner=%d kind=%d", flatbuf.ErrFormat, owner, kind)
	}
	v, err := flatbuf.CastSlice[T](b)
	if err != nil {
		return nil, fmt.Errorf("core: section owner=%d kind=%d: %w", owner, kind, err)
	}
	return v, nil
}

// loadEngineOwnerV2 assembles one engine from its owner's sections.
func loadEngineOwnerV2(img *flatbuf.Image, owner uint32, mr *bytes.Reader, m Method, policy dataset.SCCPolicy, flags uint16, prep *dataset.Prepared, opts BuildOptions) (Engine, error) {
	switch m {
	case MethodThreeDReach:
		l, err := loadLabelingV2(img, owner, mr, prep)
		if err != nil {
			return nil, err
		}
		if flags&threeDFlagSpatial == 0 {
			if err := manifestDone(mr, owner); err != nil {
				return nil, err
			}
			to := opts.ThreeD
			to.Policy = policy
			return NewThreeDReachWithLabeling(prep, l, to), nil
		}
		hasBoxes := flags&threeDFlagBoxes != 0
		exact := flags&threeDFlagExact != 0
		if (policy == dataset.MBR) != (hasBoxes && !exact) {
			return nil, fmt.Errorf("core: %w: 3DReach flags %#x inconsistent with policy %v",
				flatbuf.ErrFormat, flags, policy)
		}
		limit := prep.Net.NumVertices()
		if policy == dataset.MBR {
			limit = prep.NumComponents()
		}
		f, err := loadFlatTreeV2[geom.Box3](img, owner, mr, 3, limit)
		if err != nil {
			return nil, err
		}
		if err := manifestDone(mr, owner); err != nil {
			return nil, err
		}
		e := &ThreeDReach{prep: prep, policy: policy, l: l, exactBoxes: exact}
		if hasBoxes {
			e.boxes = f
		} else {
			e.points = rtreeIndex{f}
		}
		return e, nil
	case MethodThreeDReachRev:
		rev, err := loadLabelingV2(img, owner, mr, prep)
		if err != nil {
			return nil, err
		}
		limit := prep.Net.NumVertices()
		if policy == dataset.MBR {
			limit = prep.NumComponents()
		}
		f, err := loadFlatTreeV2[geom.Box3](img, owner, mr, 3, limit)
		if err != nil {
			return nil, err
		}
		if err := manifestDone(mr, owner); err != nil {
			return nil, err
		}
		return &ThreeDReachRev{prep: prep, policy: policy, rev: rev, tree: f}, nil
	case MethodSocReach:
		l, err := loadLabelingV2(img, owner, mr, prep)
		if err != nil {
			return nil, err
		}
		if err := manifestDone(mr, owner); err != nil {
			return nil, err
		}
		so := opts.SocReach
		so.UseBPTree = flags&socFlagBPTree != 0
		return NewSocReachWithLabeling(prep, l, so), nil
	case MethodSpaReachINT:
		l, err := loadLabelingV2(img, owner, mr, prep)
		if err != nil {
			return nil, err
		}
		f, err := loadSpaTreeV2(img, owner, mr, policy, prep)
		if err != nil {
			return nil, err
		}
		if err := manifestDone(mr, owner); err != nil {
			return nil, err
		}
		so := opts.SpaReach
		so.Policy = policy
		return newSpaReachWithTree("SpaReach-INT", prep, l, f, so), nil
	case MethodSpaReachBFL:
		var bm bflMeta
		if err := readManifest(mr, owner, &bm); err != nil {
			return nil, err
		}
		if int(bm.N) != prep.DAG.NumVertices() {
			return nil, fmt.Errorf("core: %w: BFL has %d vertices, DAG has %d",
				flatbuf.ErrFormat, bm.N, prep.DAG.NumVertices())
		}
		hash, err := castSection[int32](img, owner, secBFLHash)
		if err != nil {
			return nil, err
		}
		out, err := castSection[uint64](img, owner, secBFLOut)
		if err != nil {
			return nil, err
		}
		in, err := castSection[uint64](img, owner, secBFLIn)
		if err != nil {
			return nil, err
		}
		discover, err := castSection[int32](img, owner, secBFLDiscover)
		if err != nil {
			return nil, err
		}
		finish, err := castSection[int32](img, owner, secBFLFinish)
		if err != nil {
			return nil, err
		}
		idx, err := bfl.FromFlat(prep.DAG, int(bm.Words), hash, out, in, discover, finish)
		if err != nil {
			return nil, fmt.Errorf("core: %w: %v", flatbuf.ErrFormat, err)
		}
		f, err := loadSpaTreeV2(img, owner, mr, policy, prep)
		if err != nil {
			return nil, err
		}
		if err := manifestDone(mr, owner); err != nil {
			return nil, err
		}
		so := opts.SpaReach
		so.Policy = policy
		return newSpaReachWithTree("SpaReach-BFL", prep, idx, f, so), nil
	case MethodGeoReach:
		var gm geoMeta
		if err := readManifest(mr, owner, &gm); err != nil {
			return nil, err
		}
		if err := manifestDone(mr, owner); err != nil {
			return nil, err
		}
		gflags, ok := img.Section(owner, secGeoFlags)
		if !ok {
			return nil, fmt.Errorf("core: %w: missing section owner=%d kind=%d", flatbuf.ErrFormat, owner, secGeoFlags)
		}
		rmbr, err := castSection[float64](img, owner, secGeoRMBR)
		if err != nil {
			return nil, err
		}
		gridOff, err := castSection[uint64](img, owner, secGeoGridOff)
		if err != nil {
			return nil, err
		}
		gridKeys, err := castSection[uint64](img, owner, secGeoGridKeys)
		if err != nil {
			return nil, err
		}
		idx, err := georeach.FromFlat(prep, georeach.FlatMeta{
			Levels: int(gm.Levels),
			Space:  geom.NewRect(gm.Space[0], gm.Space[1], gm.Space[2], gm.Space[3]),
		}, gflags, rmbr, gridOff, gridKeys)
		if err != nil {
			return nil, fmt.Errorf("core: %w: %v", flatbuf.ErrFormat, err)
		}
		return &GeoReach{idx: idx}, nil
	default:
		return nil, fmt.Errorf("core: %w: method %v is not loadable from a flat image", flatbuf.ErrFormat, m)
	}
}

// loadLabelingV2 reads the labelingMeta record then overlays the four
// label columns, revalidating exactly what ReadLabeling would.
func loadLabelingV2(img *flatbuf.Image, owner uint32, mr *bytes.Reader, prep *dataset.Prepared) (*labeling.Labeling, error) {
	var lm labelingMeta
	if err := readManifest(mr, owner, &lm); err != nil {
		return nil, err
	}
	post, err := castSection[int32](img, owner, secLabelPost)
	if err != nil {
		return nil, err
	}
	order, err := castSection[int32](img, owner, secLabelOrder)
	if err != nil {
		return nil, err
	}
	off, err := castSection[uint64](img, owner, secLabelOff)
	if err != nil {
		return nil, err
	}
	data, err := castSection[intervals.Interval](img, owner, secLabelData)
	if err != nil {
		return nil, err
	}
	if int(lm.N) != len(post) {
		return nil, fmt.Errorf("core: %w: manifest says %d vertices, post column has %d",
			flatbuf.ErrFormat, lm.N, len(post))
	}
	// Empty sections cast to nil; FromFlat wants the n+1 offsets shape.
	if len(post) == 0 && len(off) == 0 {
		off = []uint64{0}
	}
	l, err := labeling.FromFlat(post, order, off, data, lm.Uncompressed, lm.Compressed)
	if err != nil {
		return nil, fmt.Errorf("core: %w: %v", flatbuf.ErrFormat, err)
	}
	if l.NumVertices() != prep.NumComponents() {
		return nil, fmt.Errorf("core: labeling has %d vertices, network has %d components",
			l.NumVertices(), prep.NumComponents())
	}
	return l, nil
}

// loadFlatTreeV2 reads a treeMeta record, overlays the tree columns and
// range-checks every entry id against limit — ids index SpatialMembers
// and the network's vertex tables, so an out-of-range id in a corrupt
// file would otherwise become a query-time panic.
func loadFlatTreeV2[B rtree.FlatBound[B]](img *flatbuf.Image, owner uint32, mr *bytes.Reader, wantDims, limit int) (*rtree.Flat[B], error) {
	var tm treeMeta
	if err := readManifest(mr, owner, &tm); err != nil {
		return nil, err
	}
	if int(tm.Dims) != wantDims {
		return nil, fmt.Errorf("core: %w: tree of owner %d has %d dims, want %d",
			flatbuf.ErrFormat, owner, tm.Dims, wantDims)
	}
	nodeBounds, err := castSection[float64](img, owner, secTreeNodeBounds)
	if err != nil {
		return nil, err
	}
	nodeMeta, err := castSection[uint32](img, owner, secTreeNodeMeta)
	if err != nil {
		return nil, err
	}
	entryBounds, err := castSection[float64](img, owner, secTreeEntryBound)
	if err != nil {
		return nil, err
	}
	entryIDs, err := castSection[int32](img, owner, secTreeEntryIDs)
	if err != nil {
		return nil, err
	}
	if int(tm.NumNodes)*2 != len(nodeMeta) {
		return nil, fmt.Errorf("core: %w: manifest says %d nodes, meta column has %d",
			flatbuf.ErrFormat, tm.NumNodes, len(nodeMeta)/2)
	}
	f, err := rtree.NewFlat[B](rtree.FlatMeta{
		MaxEntries:     int(tm.MaxEntries),
		Height:         int(tm.Height),
		Size:           int(tm.Size),
		LeafBoundBytes: int(tm.LeafBoundBytes),
	}, nodeBounds, nodeMeta, entryBounds, entryIDs)
	if err != nil {
		return nil, fmt.Errorf("core: %w: owner %d: %v", flatbuf.ErrFormat, owner, err)
	}
	for _, id := range entryIDs {
		if id < 0 || int(id) >= limit {
			return nil, fmt.Errorf("core: %w: tree entry id %d outside [0,%d)",
				flatbuf.ErrFormat, id, limit)
		}
	}
	return f, nil
}

// loadSpaTreeV2 loads SpaReach's 2D tree; entry ids are vertices under
// Replicate, components under MBR.
func loadSpaTreeV2(img *flatbuf.Image, owner uint32, mr *bytes.Reader, policy dataset.SCCPolicy, prep *dataset.Prepared) (*rtree.Flat[geom.Rect], error) {
	limit := prep.Net.NumVertices()
	if policy == dataset.MBR {
		limit = prep.NumComponents()
	}
	return loadFlatTreeV2[geom.Rect](img, owner, mr, 2, limit)
}

// loadAutoV2 assembles the composite: the root manifest carries the
// member list and learned coefficients, each member its own manifest
// and columns under owner i+1.
func loadAutoV2(img *flatbuf.Image, mr *bytes.Reader, prep *dataset.Prepared, opts BuildOptions, policy dataset.SCCPolicy) (*Auto, error) {
	var n uint8
	if err := readManifest(mr, 0, &n); err != nil {
		return nil, err
	}
	if n == 0 || int(n) > maxAutoMembers() {
		return nil, fmt.Errorf("core: %w: auto member count %d out of range [1,%d]",
			flatbuf.ErrFormat, n, maxAutoMembers())
	}
	methods := make([]Method, n)
	for i := range methods {
		var mb uint8
		if err := readManifest(mr, 0, &mb); err != nil {
			return nil, err
		}
		methods[i] = Method(mb)
	}
	coefs := make([]float64, n)
	if err := readManifest(mr, 0, &coefs); err != nil {
		return nil, err
	}
	if err := manifestDone(mr, 0); err != nil {
		return nil, err
	}
	engines := make([]Engine, n)
	for i := range engines {
		owner := uint32(i + 1)
		mmr, mh, err := openManifest(img, owner)
		if err != nil {
			return nil, fmt.Errorf("core: auto member %d: %w", i, err)
		}
		if Method(mh.Method) != methods[i] {
			return nil, fmt.Errorf("core: %w: auto member %d manifest says %v, root says %v",
				flatbuf.ErrFormat, i, Method(mh.Method), methods[i])
		}
		if Method(mh.Method) == MethodAuto {
			return nil, fmt.Errorf("core: %w: auto member %d is itself an auto composite", flatbuf.ErrFormat, i)
		}
		e, err := loadEngineOwnerV2(img, owner, mmr, methods[i], dataset.SCCPolicy(mh.Policy), mh.Flags, prep, opts)
		if err != nil {
			return nil, fmt.Errorf("core: auto member %d: %w", i, err)
		}
		engines[i] = e
	}
	a := assembleAuto(prep, policy, methods, engines, opts.Auto, harvestForward(prep, opts, engines))
	for i, c := range coefs {
		a.pl.Model().SetCoef(i, c)
	}
	return a, nil
}

// OpenMappedEngine memory-maps a v2 index file and assembles its engine
// directly over the mapped pages: no decode pass, no per-structure
// copies — cold-start cost is the page faults queries actually incur.
// The returned closer owns the mapping; the engine must not be used
// after Close. Only v2 files can be mapped; a v1 file yields an error
// directing the caller to the streaming loader.
func OpenMappedEngine(path string, prep *dataset.Prepared, opts BuildOptions) (BuildResult, io.Closer, error) {
	m, err := flatbuf.MapFile(path)
	if err != nil {
		return BuildResult{}, nil, err
	}
	img, err := flatbuf.Open(m.Data())
	if err != nil {
		isV1 := len(m.Data()) >= 4 && bytes.Equal(m.Data()[:4], engineMagic[:])
		_ = m.Close()
		if isV1 {
			return BuildResult{}, nil, fmt.Errorf("core: %s is a v1 index; load it with LoadEngine or re-save to map it", path)
		}
		return BuildResult{}, nil, err
	}
	res, err := loadEngineV2(img, prep, opts)
	if err != nil {
		_ = m.Close()
		return BuildResult{}, nil, err
	}
	res.MappedBytes = m.Size()
	res.Mapped = m.Mapped()
	return res, m, nil
}
