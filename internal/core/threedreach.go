package core

import (
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/pool"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// ThreeDReach is the paper's primary contribution (§4.2): the geosocial
// network and its interval-based labeling are modeled inside a
// three-dimensional space whose first two dimensions are the original
// plane and whose third is the post-order domain. Every spatial vertex u
// becomes the 3D point (u.x, u.y, post(u)); a RangeReach(G, v, R) query
// becomes one 3D range query per label [l, h] ∈ L(v) — the cuboid with
// base R spanning [l, h] on the third axis. The query is positive iff
// some cuboid contains a point.
type ThreeDReach struct {
	prep   *dataset.Prepared
	policy dataset.SCCPolicy
	l      *labeling.Labeling

	// points backs the Replicate policy over point-only networks through
	// the selected backend; boxes backs the MBR policy and — exactly —
	// the Replicate policy of networks with extended geometries (paper
	// footnote 1) through the R-tree, the only backend indexing boxes.
	points pointIndex3
	boxes  rtree.Searcher[geom.Box3]
	// exactBoxes marks the boxes tree as holding exact per-vertex
	// geometries: a hit is a witness, no member verification needed.
	exactBoxes bool
}

// ThreeDOptions configures NewThreeDReach and NewThreeDReachRev.
type ThreeDOptions struct {
	// Policy selects the SCC spatial policy (default Replicate).
	Policy dataset.SCCPolicy
	// Fanout is the R-tree fan-out (0 = rtree.DefaultMaxEntries).
	Fanout int
	// Forest is the spanning-forest policy of the labeling.
	Forest graph.ForestPolicy
	// Backend selects the 3D point index for the Replicate policy
	// (default the paper's R-tree). The MBR policy and 3DReach-Rev
	// index extended objects and always use the R-tree.
	Backend SpatialBackend
	// Parallelism bounds the build workers: 0 or 1 builds sequentially,
	// n > 1 parallelizes the labeling and the spatial bulk load
	// internally. The 3D index depends on the labeling's post-order
	// numbers, so the two phases chain rather than overlap. The built
	// engine is identical at any setting.
	Parallelism int
	// Span, when non-nil, accumulates named per-phase build durations.
	Span *trace.BuildSpan
}

// NewThreeDReach builds the point-based 3DReach engine.
func NewThreeDReach(prep *dataset.Prepared, opts ThreeDOptions) *ThreeDReach {
	t := opts.Span.Start()
	l := labeling.Build(prep.DAG, labeling.Options{Forest: opts.Forest, Parallelism: opts.Parallelism})
	opts.Span.End("labeling", t)
	return NewThreeDReachWithLabeling(prep, l, opts)
}

// NewThreeDReachWithLabeling builds the engine around an existing
// labeling of prep.DAG — e.g. one reloaded from disk (see LoadEngine) or
// shared with another engine. The spatial index is rebuilt by bulk load,
// which is cheap relative to labeling construction.
func NewThreeDReachWithLabeling(prep *dataset.Prepared, l *labeling.Labeling, opts ThreeDOptions) *ThreeDReach {
	e := &ThreeDReach{prep: prep, policy: opts.Policy, l: l}
	wp := pool.New(max(opts.Parallelism, 1))
	t := opts.Span.Start()
	defer opts.Span.End("spatial", t)

	if opts.Policy == dataset.MBR {
		// A component's geometry is its member MBR, lifted to its
		// post-order height: the 3D R-tree indexes boxes instead of
		// points (paper §6.2's MBR-based variant).
		var entries []rtree.Entry[geom.Box3]
		for c := range prep.Members {
			if prep.HasSpatial[c] {
				z := float64(l.PostOf(c))
				entries = append(entries, rtree.Entry[geom.Box3]{
					Box: geom.Box3FromRect(prep.CompMBR[c], z, z),
					ID:  int32(c),
				})
			}
		}
		e.boxes = rtree.BulkLoadPool(entries, opts.Fanout, wp)
		return e
	}

	if prep.Net.HasExtents() {
		// Extended geometries: every spatial vertex becomes the box
		// (geometry × post), and an intersecting cuboid is a witness.
		var entries []rtree.Entry[geom.Box3]
		for v, s := range prep.Net.Spatial {
			if s {
				z := float64(l.PostOf(int(prep.CompOf(v))))
				entries = append(entries, rtree.Entry[geom.Box3]{
					Box: geom.Box3FromRect(prep.Net.GeometryOf(v), z, z),
					ID:  int32(v),
				})
			}
		}
		e.boxes = rtree.BulkLoadPool(entries, opts.Fanout, wp)
		e.exactBoxes = true
		return e
	}

	var pts []point3
	for v, s := range prep.Net.Spatial {
		if s {
			c := prep.CompOf(v)
			p := prep.Net.Points[v]
			pts = append(pts, point3{
				x: p.X, y: p.Y, z: float64(l.PostOf(int(c))), id: int32(v),
			})
		}
	}
	e.points = buildPointIndex3(pts, opts.Backend, opts.Fanout, wp)
	return e
}

// Name implements Engine.
func (e *ThreeDReach) Name() string { return "3DReach" }

// RangeReach implements Engine: one cuboid query per label, stopping at
// the first witness.
func (e *ThreeDReach) RangeReach(v int, r geom.Rect) bool {
	return e.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine: each label of the query vertex
// counts as inspected, the per-cuboid 3D searches accumulate index-node
// work into the spatial stage, and MBR-policy member confirmations into
// the verify stage.
func (e *ThreeDReach) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	src := int(e.prep.CompOf(v))
	for _, iv := range e.l.Labels[src] {
		sp.AddLabels(1)
		q := geom.Box3FromRect(r, float64(iv.Lo), float64(iv.Hi))
		if e.points != nil {
			t := sp.Start()
			hit := e.points.AnyInBox(q, sp)
			sp.End(trace.StageSpatial, t)
			if hit {
				return true
			}
			continue
		}
		if e.exactBoxes {
			t := sp.Start()
			_, ok := e.boxes.SearchAnyTraced(q, sp)
			sp.End(trace.StageSpatial, t)
			if ok {
				return true
			}
			continue
		}
		// MBR policy: member confirmation runs inside the R-tree
		// traversal, so the whole interleaved pass is timed as the
		// spatial stage (stage timings stay disjoint); the member
		// counter still records the verification work.
		hit := false
		t := sp.Start()
		e.boxes.SearchTraced(q, sp, func(entry rtree.Entry[geom.Box3]) bool {
			if r.ContainsRect(entry.Box.Rect()) {
				hit = true
				return false
			}
			for _, m := range e.prep.SpatialMembers[entry.ID] {
				sp.IncMember()
				if e.prep.Witness(m, r) {
					hit = true
					break
				}
			}
			return !hit
		})
		sp.End(trace.StageSpatial, t)
		if hit {
			return true
		}
	}
	return false
}

// MemoryBytes implements Engine: labeling plus the 3D index.
func (e *ThreeDReach) MemoryBytes() int64 {
	total := e.l.MemoryBytes()
	if e.points != nil {
		total += e.points.MemoryBytes()
	} else {
		total += e.boxes.MemoryBytes()
	}
	return total
}

// Labeling exposes the underlying labeling for stats reporting.
func (e *ThreeDReach) Labeling() *labeling.Labeling { return e.l }

var _ Engine = (*ThreeDReach)(nil)
