package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/trace"
)

// Method enumerates the RangeReach evaluation methods of the paper's
// experimental analysis (§6.1).
type Method int

const (
	// MethodSpaReachBFL is the spatial-first baseline with BFL probes.
	MethodSpaReachBFL Method = iota
	// MethodSpaReachINT is the spatial-first baseline with interval-label probes.
	MethodSpaReachINT
	// MethodGeoReach is the SPA-Graph state of the art.
	MethodGeoReach
	// MethodSocReach is the social-first method.
	MethodSocReach
	// MethodThreeDReach is the point-based 3D transformation.
	MethodThreeDReach
	// MethodThreeDReachRev is the line-based variant on reversed labels.
	MethodThreeDReachRev
	// MethodSpaReachPLL is the spatial-first baseline with 2-hop
	// (pruned landmark labeling) probes, the first variant of [47].
	MethodSpaReachPLL
	// MethodSpaReachFeline is the spatial-first baseline with Feline
	// probes, the second variant of [47].
	MethodSpaReachFeline
	// MethodSpaReachGRAIL is the spatial-first baseline with GRAIL
	// probes (paper §7.1).
	MethodSpaReachGRAIL
	// MethodAuto is the adaptive composite: a set of complementary
	// member engines over shared labeling state, with a cost-based
	// planner routing each query to the predicted-cheapest member.
	MethodAuto
)

// AllMethods lists the methods of the paper's own evaluation (§6.1), in
// its reporting order. The Tables 4/5 harness iterates exactly these.
var AllMethods = []Method{
	MethodSpaReachBFL,
	MethodSpaReachINT,
	MethodGeoReach,
	MethodSocReach,
	MethodThreeDReach,
	MethodThreeDReachRev,
}

// ExtendedMethods lists the additional spatial-first variants the paper
// cites from [47] and §7.1 but does not re-evaluate; rrbench's
// ablation-spareach compares them against the paper's two.
var ExtendedMethods = []Method{
	MethodSpaReachPLL,
	MethodSpaReachFeline,
	MethodSpaReachGRAIL,
}

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodSpaReachBFL:
		return "SpaReach-BFL"
	case MethodSpaReachINT:
		return "SpaReach-INT"
	case MethodGeoReach:
		return "GeoReach"
	case MethodSocReach:
		return "SocReach"
	case MethodThreeDReach:
		return "3DReach"
	case MethodThreeDReachRev:
		return "3DReach-Rev"
	case MethodSpaReachPLL:
		return "SpaReach-PLL"
	case MethodSpaReachFeline:
		return "SpaReach-Feline"
	case MethodSpaReachGRAIL:
		return "SpaReach-GRAIL"
	case MethodAuto:
		return "Auto"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SupportsMBR reports whether the method has an MBR-policy variant: the
// paper's §6.2 discussion excludes SocReach (no spatial index) and
// GeoReach (non-MBR by design).
func (m Method) SupportsMBR() bool {
	switch m {
	case MethodSocReach, MethodGeoReach:
		return false
	default:
		return true
	}
}

// BuildOptions bundles the per-method knobs for BuildMethod.
type BuildOptions struct {
	// Policy is the SCC spatial policy for the methods that support it.
	Policy dataset.SCCPolicy
	// Parallelism bounds the worker count of the build pipeline: 0 or 1
	// builds exactly as the sequential code path, n > 1 lets independent
	// phases (labeling vs. spatial tree, Auto members) and
	// level-parallel index construction fan out across up to n workers.
	// Results are identical at any setting — parallel construction is
	// deterministic by design (see DESIGN.md §12). It is propagated into
	// every sub-option that has its own Parallelism knob, unless that
	// knob is already set.
	Parallelism int
	// Span, when non-nil, accumulates named per-phase build durations.
	// BuildMethod allocates one itself when nil, so BuildResult.Phases
	// is always populated.
	Span *trace.BuildSpan
	// SpaReach carries the spatial-first options (Policy is overridden).
	SpaReach SpaReachOptions
	// ThreeD carries the 3DReach options (Policy is overridden).
	ThreeD ThreeDOptions
	// GeoReach carries the SPA-Graph options.
	GeoReach GeoReachOptions
	// SocReach carries the social-first options.
	SocReach SocReachOptions
	// Auto carries the adaptive-composite options (MethodAuto only).
	Auto AutoOptions
}

// propagate copies the build-wide Parallelism and Span into each
// sub-option so constructors see them regardless of which entry point
// the build came through. Per-method Parallelism overrides win.
func (o *BuildOptions) propagate() {
	if o.Span == nil {
		o.Span = &trace.BuildSpan{}
	}
	if o.SpaReach.Parallelism == 0 {
		o.SpaReach.Parallelism = o.Parallelism
	}
	if o.ThreeD.Parallelism == 0 {
		o.ThreeD.Parallelism = o.Parallelism
	}
	if o.SocReach.Parallelism == 0 {
		o.SocReach.Parallelism = o.Parallelism
	}
	if o.GeoReach.Params.Parallelism == 0 {
		o.GeoReach.Params.Parallelism = o.Parallelism
	}
	o.SpaReach.Span = o.Span
	o.ThreeD.Span = o.Span
	o.SocReach.Span = o.Span
	o.GeoReach.Span = o.Span
}

// BuildResult is a constructed engine plus its offline costs, the raw
// material of Tables 4 and 5.
type BuildResult struct {
	Engine    Engine
	Method    Method
	Policy    dataset.SCCPolicy
	BuildTime time.Duration
	Bytes     int64
	// Phases attributes the build wall-clock to named pipeline phases
	// ("labeling", "spatial", "reach", …), sorted by name.
	Phases []trace.BuildPhase
	// Mapped and MappedBytes describe the backing of an engine opened
	// with OpenMappedEngine: whether its columns overlay a live memory
	// map (vs an aligned in-memory copy on mmap-less platforms) and the
	// image size. Both are zero for built or stream-loaded engines.
	Mapped      bool
	MappedBytes int64
}

// BuildMethod constructs the engine for a method, timing the build. It
// returns an error for unsupported (method, policy) combinations instead
// of silently falling back.
func BuildMethod(prep *dataset.Prepared, m Method, opts BuildOptions) (BuildResult, error) {
	if opts.Policy == dataset.MBR && !m.SupportsMBR() {
		return BuildResult{}, fmt.Errorf("core: %v has no MBR variant", m)
	}
	opts.propagate()
	//lint:ignore hotclock build-time measurement, not the query path
	start := time.Now()
	var e Engine
	switch m {
	case MethodSpaReachBFL:
		so := opts.SpaReach
		so.Policy = opts.Policy
		e = NewSpaReachBFL(prep, so)
	case MethodSpaReachINT:
		so := opts.SpaReach
		so.Policy = opts.Policy
		e = NewSpaReachINT(prep, so)
	case MethodGeoReach:
		e = NewGeoReach(prep, opts.GeoReach)
	case MethodSocReach:
		e = NewSocReach(prep, opts.SocReach)
	case MethodThreeDReach:
		to := opts.ThreeD
		to.Policy = opts.Policy
		e = NewThreeDReach(prep, to)
	case MethodThreeDReachRev:
		to := opts.ThreeD
		to.Policy = opts.Policy
		e = NewThreeDReachRev(prep, to)
	case MethodSpaReachPLL:
		so := opts.SpaReach
		so.Policy = opts.Policy
		e = NewSpaReachPLL(prep, so)
	case MethodSpaReachFeline:
		so := opts.SpaReach
		so.Policy = opts.Policy
		e = NewSpaReachFeline(prep, so)
	case MethodSpaReachGRAIL:
		so := opts.SpaReach
		so.Policy = opts.Policy
		e = NewSpaReachGRAIL(prep, so)
	case MethodAuto:
		auto, err := BuildAuto(prep, opts)
		if err != nil {
			return BuildResult{}, err
		}
		e = auto
	default:
		return BuildResult{}, fmt.Errorf("core: unknown method %d", int(m))
	}
	return BuildResult{
		Engine: e,
		Method: m,
		Policy: opts.Policy,
		//lint:ignore hotclock build-time measurement, not the query path
		BuildTime: time.Since(start),
		Bytes:     e.MemoryBytes(),
		Phases:    opts.Span.Phases(),
	}, nil
}
