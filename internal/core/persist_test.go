package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestEngineSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	net := randomNetwork(rng, 40, 25, true)
	prep := dataset.Prepare(net)
	truth := NewNaiveBFS(net)

	persistable := []struct {
		method Method
		policy dataset.SCCPolicy
	}{
		{MethodThreeDReach, dataset.Replicate},
		{MethodThreeDReach, dataset.MBR},
		{MethodThreeDReachRev, dataset.Replicate},
		{MethodSocReach, dataset.Replicate},
		{MethodSpaReachINT, dataset.Replicate},
		{MethodSpaReachINT, dataset.MBR},
		{MethodSpaReachBFL, dataset.Replicate},
		{MethodGeoReach, dataset.Replicate},
	}
	for _, tc := range persistable {
		res, err := BuildMethod(prep, tc.method, BuildOptions{Policy: tc.policy})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveEngine(&buf, res.Engine); err != nil {
			t.Fatalf("%v/%v: save: %v", tc.method, tc.policy, err)
		}
		loaded, err := LoadEngine(&buf, prep, BuildOptions{})
		if err != nil {
			t.Fatalf("%v/%v: load: %v", tc.method, tc.policy, err)
		}
		if loaded.Method != tc.method || loaded.Policy != tc.policy {
			t.Fatalf("%v/%v: header round trip lost metadata: %v/%v",
				tc.method, tc.policy, loaded.Method, loaded.Policy)
		}
		for q := 0; q < 40; q++ {
			v := rng.Intn(net.NumVertices())
			r := randomRegion(rng)
			want := truth.RangeReach(v, r)
			if got := loaded.Engine.RangeReach(v, r); got != want {
				t.Fatalf("%v/%v: loaded engine wrong at v=%d r=%v: got %v want %v",
					tc.method, tc.policy, v, r, got, want)
			}
		}
	}
}

func TestSocReachBPTreeFlagSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	prep := dataset.Prepare(randomNetwork(rng, 20, 10, false))
	e := NewSocReach(prep, SocReachOptions{UseBPTree: true})
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf, prep, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Engine.(*SocReach).post == nil {
		t.Error("B+-tree flag lost on round trip")
	}
}

func TestSaveEngineUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(611))
	prep := dataset.Prepare(randomNetwork(rng, 10, 5, false))
	var buf bytes.Buffer
	if err := SaveEngine(&buf, NewNaiveBFS(prep.Net)); err == nil {
		t.Error("naive save accepted")
	}
	if err := SaveEngine(&buf, NewSpaReachFeline(prep, SpaReachOptions{})); err == nil {
		t.Error("Feline save accepted")
	}
}

func TestLoadEngineRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(613))
	prep := dataset.Prepare(randomNetwork(rng, 10, 5, false))

	cases := map[string]string{
		"empty":     "",
		"bad-magic": "XXXXxxxxxxxxxxxxx",
		"truncated": "RRIX\x01\x04\x00", // header only, no payload
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadEngine(strings.NewReader(input), prep, BuildOptions{}); err == nil {
				t.Error("corrupt input accepted")
			}
		})
	}
}

func TestLoadEngineRejectsWrongNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(617))
	prepA := dataset.Prepare(randomNetwork(rng, 30, 20, false))
	prepB := dataset.Prepare(randomNetwork(rng, 10, 5, false))
	e := NewThreeDReach(prepA, ThreeDOptions{})
	var buf bytes.Buffer
	if err := SaveEngine(&buf, e); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(&buf, prepB, BuildOptions{}); err == nil {
		t.Error("engine accepted against a different network")
	}
}
