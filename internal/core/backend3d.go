package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/pool"
	"repro/internal/rtree"
	"repro/internal/spatialgrid"
	"repro/internal/trace"
)

// SpatialBackend selects the 3D point index behind 3DReach (Replicate
// policy). The paper notes the R-tree "can be replaced by another
// structure as long as it is able to index the three-dimensional space"
// (§7.2); rrbench's ablation-3d compares the three.
type SpatialBackend int

const (
	// BackendRTree is the paper's choice: an STR-bulk-loaded 3D R-tree.
	BackendRTree SpatialBackend = iota
	// BackendKDTree is a balanced k-d tree (space-oriented partitioning).
	BackendKDTree
	// BackendGrid is a uniform 3D grid.
	BackendGrid
)

// String implements fmt.Stringer.
func (b SpatialBackend) String() string {
	switch b {
	case BackendRTree:
		return "rtree"
	case BackendKDTree:
		return "kdtree"
	case BackendGrid:
		return "grid"
	default:
		return fmt.Sprintf("SpatialBackend(%d)", int(b))
	}
}

// pointIndex3 abstracts "is there any indexed 3D point inside this box?"
// — the only primitive point-based 3DReach needs. The span threads the
// per-backend work counters out; nil disables them.
type pointIndex3 interface {
	AnyInBox(q geom.Box3, sp *trace.Span) bool
	MemoryBytes() int64
}

// point3 is the backend-neutral input record.
type point3 struct {
	x, y, z float64
	id      int32
}

// buildPointIndex3 constructs the selected backend over the points. A
// non-sequential pool parallelizes the R-tree STR packing and the k-d
// subtree builds; the grid build stays sequential (one bucketing pass).
// The index is identical either way.
func buildPointIndex3(pts []point3, backend SpatialBackend, fanout int, p *pool.Pool) pointIndex3 {
	switch backend {
	case BackendKDTree:
		kpts := make([]kdtree.Point, len(pts))
		for i, p := range pts {
			kpts[i] = kdtree.Point{X: p.x, Y: p.y, Z: p.z, ID: p.id}
		}
		return kdtreeIndex{kdtree.BuildPool(kpts, 3, p)}
	case BackendGrid:
		gpts := make([]spatialgrid.Point, len(pts))
		for i, p := range pts {
			gpts[i] = spatialgrid.Point{X: p.x, Y: p.y, Z: p.z, ID: p.id}
		}
		return gridIndex{spatialgrid.New(gpts, 0)}
	default:
		entries := make([]rtree.Entry[geom.Box3], len(pts))
		for i, p := range pts {
			entries[i] = rtree.Entry[geom.Box3]{
				Box: geom.Box3FromPoint(geom.Pt3(p.x, p.y, p.z)),
				ID:  p.id,
			}
		}
		t := rtree.BulkLoadPool(entries, fanout, p)
		t.SetLeafBoundBytes(24)
		return rtreeIndex{t}
	}
}

type rtreeIndex struct{ t rtree.Searcher[geom.Box3] }

func (r rtreeIndex) AnyInBox(q geom.Box3, sp *trace.Span) bool {
	_, ok := r.t.SearchAnyTraced(q, sp)
	return ok
}

func (r rtreeIndex) MemoryBytes() int64 { return r.t.MemoryBytes() }

type kdtreeIndex struct{ t *kdtree.Tree }

func (k kdtreeIndex) AnyInBox(q geom.Box3, sp *trace.Span) bool {
	return !k.t.SearchBox3Traced(q, sp, func(kdtree.Point) bool { return false })
}

func (k kdtreeIndex) MemoryBytes() int64 { return k.t.MemoryBytes() }

type gridIndex struct{ g *spatialgrid.Grid }

func (g gridIndex) AnyInBox(q geom.Box3, sp *trace.Span) bool {
	return !g.g.SearchBox3Traced(q, sp, func(spatialgrid.Point) bool { return false })
}

func (g gridIndex) MemoryBytes() int64 { return g.g.MemoryBytes() }
