package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

// withExtents gives a random subset of the network's spatial vertices a
// rectangular extent around their point (paper footnote 1).
func withExtents(rng *rand.Rand, net *dataset.Network) *dataset.Network {
	net.Extents = make([]geom.Rect, net.NumVertices())
	for v, s := range net.Spatial {
		if s && rng.Float64() < 0.5 {
			p := net.Points[v]
			w := 1 + rng.Float64()*15
			h := 1 + rng.Float64()*15
			net.Extents[v] = geom.NewRect(p.X-w/2, p.Y-h/2, p.X+w/2, p.Y+h/2)
		}
	}
	return net
}

func TestAllEnginesAgreeWithExtendedGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < 15; trial++ {
		var net *dataset.Network
		if trial%2 == 0 {
			net = withExtents(rng, randomNetwork(rng, 3+rng.Intn(20), 1+rng.Intn(15), true))
		} else {
			net = withExtents(rng, spatialCycleNetwork(rng, 5+rng.Intn(25)))
		}
		if !net.HasExtents() {
			continue // the random subset may be empty; nothing new to test
		}
		prep := dataset.Prepare(net)
		truth := NewNaiveBFS(net)
		engines := buildAll(t, prep)
		for q := 0; q < 25; q++ {
			v := rng.Intn(net.NumVertices())
			r := randomRegion(rng)
			want := truth.RangeReach(v, r)
			for _, e := range engines {
				if got := e.RangeReach(v, r); got != want {
					t.Fatalf("trial %d: %s(%d, %v) = %v, want %v (extended geometries)",
						trial, e.Name(), v, r, got, want)
				}
			}
		}
	}
}

func TestExtendedGeometryWitnessSemantics(t *testing.T) {
	// A single venue with a large extent: a region that intersects the
	// extent without containing its center must be positive.
	net := &dataset.Network{
		Name:    "mall",
		Graph:   graph.FromEdges(2, [][2]int{{0, 1}}),
		Spatial: []bool{false, true},
		Points:  []geom.Point{{}, geom.Pt(50, 50)},
		Extents: []geom.Rect{{}, geom.NewRect(40, 40, 60, 60)},
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	prep := dataset.Prepare(net)
	truth := NewNaiveBFS(net)
	engines := buildAll(t, prep)

	cases := []struct {
		r    geom.Rect
		want bool
	}{
		{geom.NewRect(58, 58, 70, 70), true},  // clips the corner, misses the center
		{geom.NewRect(61, 61, 70, 70), false}, // just outside
		{geom.NewRect(45, 45, 55, 55), true},  // inside the extent
		{geom.NewRect(0, 0, 40, 40), true},    // touches the boundary
	}
	for _, tc := range cases {
		if got := truth.RangeReach(0, tc.r); got != tc.want {
			t.Fatalf("naive: RangeReach(0, %v) = %v, want %v", tc.r, got, tc.want)
		}
		for _, e := range engines {
			if got := e.RangeReach(0, tc.r); got != tc.want {
				t.Errorf("%s: RangeReach(0, %v) = %v, want %v", e.Name(), tc.r, got, tc.want)
			}
		}
	}
}
