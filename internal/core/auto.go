package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/labeling"
	"repro/internal/planner"
	"repro/internal/pool"
	"repro/internal/trace"
)

// DefaultAutoMembers is the composite the planner routes over when the
// caller does not pick one: the three methods whose winning regimes
// tile the paper's §6 parameter space — SocReach for small descendant
// sets, 3DReach-Rev for selective regions, SpaReach-INT for large
// regions with few candidates.
var DefaultAutoMembers = []Method{MethodSocReach, MethodThreeDReachRev, MethodSpaReachINT}

// AutoOptions configures the MethodAuto composite.
type AutoOptions struct {
	// Members lists the engines to build and route across (default
	// DefaultAutoMembers, at most planner.MaxMembers, no duplicates,
	// MethodAuto itself excluded).
	Members []Method
	// Explore routes every Nth query round-robin instead of by cost so
	// rarely-chosen members keep fresh coefficients. 0 selects
	// planner.DefaultExploreEvery, negative disables exploration.
	Explore int
	// Alpha is the EMA smoothing factor of the feedback loop (0 selects
	// planner.DefaultAlpha).
	Alpha float64
	// Calibrate is the number of microbenchmark queries run at build
	// time to seed the per-member cost coefficients. 0 selects the
	// default (32), negative skips calibration and starts from the
	// model's uniform prior.
	Calibrate int
	// Seed drives the calibration workload (deterministic per seed).
	Seed int64
}

const defaultCalibrationQueries = 32

// maxAutoMembers bounds the composite fan-out (persistence validates
// against it too).
func maxAutoMembers() int { return planner.MaxMembers }

// workKindOf maps a member method to the work estimate that drives its
// cost model (the dominant term of its query complexity).
func workKindOf(m Method) planner.WorkKind {
	switch m {
	case MethodSocReach, MethodGeoReach:
		return planner.WorkDescendants
	case MethodThreeDReach:
		return planner.WorkCuboids
	case MethodThreeDReachRev:
		return planner.WorkPlane
	default: // all SpaReach variants
		return planner.WorkCandidates
	}
}

// sharedBuild is the core hook that lets MethodAuto's members reuse one
// labeling computation: the condensation is already shared through
// Prepared, and the forward/reversed interval labelings are built
// lazily, once, on first demand.
type sharedBuild struct {
	prep *dataset.Prepared
	opts BuildOptions

	fwd       *labeling.Labeling
	rev       *labeling.Labeling
	fwdShares int
	revShares int
}

// prepare deterministically pre-computes which shared labelings the
// member list needs — and how many members share each, so MemoryBytes
// can deduplicate — then builds them, forward and reversed concurrently
// when the pool allows. The forward labeling is always built: the
// planner's estimator reads it even when no member consumes it. Moving
// the share accounting out of the member constructors is what lets the
// members themselves build concurrently afterwards: buildMember only
// reads the finished labelings.
func (s *sharedBuild) prepare(methods []Method, p *pool.Pool) {
	for _, m := range methods {
		switch m {
		case MethodSocReach, MethodSpaReachINT, MethodThreeDReach:
			s.fwdShares++
		case MethodThreeDReachRev:
			s.revShares++
		}
	}
	t := s.opts.Span.Start()
	defer s.opts.Span.End("labeling", t)
	tasks := []func() error{
		func() error { s.forward(); return nil },
	}
	if s.revShares > 0 {
		tasks = append(tasks, func() error { s.reversed(); return nil })
	}
	_ = p.Run(tasks...)
}

// forward returns the shared forward labeling of prep.DAG, building it
// on first use. Auto unifies the members' Forest/compression knobs on
// the SocReach options, since one labeling must serve them all.
func (s *sharedBuild) forward() *labeling.Labeling {
	if s.fwd == nil {
		s.fwd = labeling.Build(s.prep.DAG, labeling.Options{
			Forest:          s.opts.SocReach.Forest,
			SkipCompression: s.opts.SocReach.SkipCompression,
			Parallelism:     s.opts.SocReach.Parallelism,
		})
	}
	return s.fwd
}

// reversed returns the shared labeling of the reversed DAG (3DReach-Rev).
func (s *sharedBuild) reversed() *labeling.Labeling {
	if s.rev == nil {
		s.rev = labeling.Build(s.prep.DAG.Reverse(), labeling.Options{
			Forest:      s.opts.ThreeD.Forest,
			Parallelism: s.opts.ThreeD.Parallelism,
		})
	}
	return s.rev
}

// buildMember constructs one member engine, reusing the shared
// labelings where the method consumes one. After prepare has run,
// buildMember is safe to call concurrently for distinct members: it
// only reads the shared state.
func (s *sharedBuild) buildMember(m Method) (Engine, error) {
	if s.opts.Policy == dataset.MBR && !m.SupportsMBR() {
		// Per-member policy: SocReach/GeoReach have no MBR variant, so
		// inside the composite they run Replicate. Answers are
		// policy-independent, so parity across members still holds.
		return s.withPolicy(m, dataset.Replicate)
	}
	return s.withPolicy(m, s.opts.Policy)
}

func (s *sharedBuild) withPolicy(m Method, policy dataset.SCCPolicy) (Engine, error) {
	switch m {
	case MethodSocReach:
		return NewSocReachWithLabeling(s.prep, s.forward(), s.opts.SocReach), nil
	case MethodSpaReachINT:
		so := s.opts.SpaReach
		so.Policy = policy
		return NewSpaReachINTWithLabeling(s.prep, s.forward(), so), nil
	case MethodThreeDReach:
		to := s.opts.ThreeD
		to.Policy = policy
		return NewThreeDReachWithLabeling(s.prep, s.forward(), to), nil
	case MethodThreeDReachRev:
		to := s.opts.ThreeD
		to.Policy = policy
		return NewThreeDReachRevWithLabeling(s.prep, s.reversed(), to), nil
	case MethodAuto:
		return nil, fmt.Errorf("core: MethodAuto cannot be its own member")
	default:
		o := s.opts
		o.Policy = policy
		o.Auto = AutoOptions{}
		res, err := BuildMethod(s.prep, m, o)
		if err != nil {
			return nil, err
		}
		return res.Engine, nil
	}
}

// sharedBytes returns the labeling bytes saved by sharing: each extra
// member reusing a labeling would otherwise have built its own copy.
func (s *sharedBuild) sharedBytes() int64 {
	var saved int64
	if s.fwd != nil && s.fwdShares > 1 {
		saved += int64(s.fwdShares-1) * s.fwd.MemoryBytes()
	}
	if s.rev != nil && s.revShares > 1 {
		saved += int64(s.revShares-1) * s.rev.MemoryBytes()
	}
	return saved
}

// Auto is the MethodAuto engine: a set of complementary member engines
// over shared labeling state, with a two-stage planner (static cost
// model + online feedback) routing each query to the predicted-cheapest
// member. Safe for concurrent queries.
type Auto struct {
	prep    *dataset.Prepared
	policy  dataset.SCCPolicy
	methods []Method
	members []Engine
	pl      *planner.Planner
	choices []atomic.Int64
	pinSeq  atomic.Uint64 // pinned-mode query clock (reviews + probes)
	obsSeq  atomic.Uint64 // unpinned-mode sampling clock for feedback

	sharedBytes int64 // labeling bytes deduplicated across members
}

// BuildAuto constructs the composite. opts.Policy applies to the
// members that support it; opts.Auto carries the planner knobs. With
// opts.Parallelism > 1 the two shared labelings build concurrently and
// then the member engines fan out across the pool — each member only
// reads the finished labelings, so the composite is identical to a
// sequential build (member order is fixed by the methods slice, not by
// completion order).
func BuildAuto(prep *dataset.Prepared, opts BuildOptions) (*Auto, error) {
	opts.propagate()
	methods := opts.Auto.Members
	if len(methods) == 0 {
		methods = DefaultAutoMembers
	}
	if len(methods) > planner.MaxMembers {
		return nil, fmt.Errorf("core: auto supports at most %d members, got %d", planner.MaxMembers, len(methods))
	}
	seen := map[Method]bool{}
	for _, m := range methods {
		if seen[m] {
			return nil, fmt.Errorf("core: duplicate auto member %v", m)
		}
		seen[m] = true
	}

	p := pool.New(max(opts.Parallelism, 1))
	shared := &sharedBuild{prep: prep, opts: opts}
	shared.prepare(methods, p)
	engines := make([]Engine, len(methods))
	// The member constructors time their own phases ("spatial",
	// "reach", …) into the shared span; no wrapper phase here, so the
	// recorded durations attribute work rather than overlapping wall
	// clock.
	if err := p.ForEach(len(methods), func(i int) error {
		e, err := shared.buildMember(methods[i])
		if err != nil {
			return fmt.Errorf("core: auto member %v: %w", methods[i], err)
		}
		engines[i] = e
		return nil
	}); err != nil {
		return nil, err
	}

	a := assembleAuto(prep, opts.Policy, methods, engines, opts.Auto, shared.forward())
	a.sharedBytes = shared.sharedBytes()

	n := opts.Auto.Calibrate
	if n == 0 {
		n = defaultCalibrationQueries
	}
	if n > 0 {
		t := opts.Span.Start()
		a.calibrate(n, opts.Auto.Seed)
		opts.Span.End("calibrate", t)
	}
	return a, nil
}

// assembleAuto wires the planner around already-built members. fwd is
// the forward labeling the estimator reads (it is not retained); both
// the build path and the persistence loader funnel through here.
func assembleAuto(prep *dataset.Prepared, policy dataset.SCCPolicy, methods []Method, engines []Engine, opts AutoOptions, fwd *labeling.Labeling) *Auto {
	descs := make([]planner.Member, len(methods))
	for i, m := range methods {
		descs[i] = planner.Member{Name: engines[i].Name(), Kind: workKindOf(m)}
	}
	est := planner.NewEstimator(prep, fwd)
	model := planner.NewModel(len(methods), opts.Alpha, opts.Explore)
	return &Auto{
		prep:    prep,
		policy:  policy,
		methods: append([]Method(nil), methods...),
		members: engines,
		pl:      planner.New(est, model, descs),
		choices: make([]atomic.Int64, len(methods)),
	}
}

// calibrate seeds the per-member cost coefficients with a deterministic
// microbenchmark: n random queries, each timed on every member, and the
// median observed seconds-per-work-unit becomes the member's
// coefficient. Medians resist the occasional allocation or scheduling
// hiccup that would skew a mean.
func (a *Auto) calibrate(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed + 0x5eed))
	space := a.prep.Net.Space()
	nv := a.prep.Net.NumVertices()
	if nv == 0 {
		return
	}
	samples := make([][]float64, len(a.members))
	var buf [planner.MaxMembers]float64
	for q := 0; q < n; q++ {
		v := rng.Intn(nv)
		r := calibrationRegion(rng, space)
		works := a.pl.EstimateWorks(v, r, buf[:])
		for i, e := range a.members {
			//lint:ignore hotclock calibration is an offline microbenchmark; measuring latency is its purpose
			start := time.Now()
			e.RangeReach(v, r)
			//lint:ignore hotclock calibration is an offline microbenchmark; measuring latency is its purpose
			sec := time.Since(start).Seconds()
			if sec > 0 {
				samples[i] = append(samples[i], sec/(1+works[i]))
			}
		}
	}
	for i, s := range samples {
		if len(s) == 0 {
			continue
		}
		sort.Float64s(s)
		a.pl.Model().SetCoef(i, s[len(s)/2])
	}
}

// calibrationRegion draws a square query region with extent 1–20% of
// the space per axis — the paper's workload sweep range.
func calibrationRegion(rng *rand.Rand, space geom.Rect) geom.Rect {
	frac := 0.01 + 0.19*rng.Float64()
	w := space.Width() * frac
	h := space.Height() * frac
	x := space.Min.X + rng.Float64()*(space.Width()-w)
	y := space.Min.Y + rng.Float64()*(space.Height()-h)
	return geom.NewRect(x, y, x+w, y+h)
}

// Name implements Engine.
func (a *Auto) Name() string { return "Auto" }

// RangeReach implements Engine: plan, route, observe.
func (a *Auto) RangeReach(v int, r geom.Rect) bool {
	return a.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine. The planning overhead per query
// is O(members): a few histogram lookups and an argmin — and once the
// model pins a stable winner, untraced queries skip even that and pay
// only two atomic operations over a direct member call. Every
// DefaultReviewEvery-th query (and every traced one) still takes the
// full estimate/observe path so the pin can be revised, and every
// DefaultPinnedExploreEvery-th query probes one of the other members
// round-robin so their coefficients keep tracking the live workload;
// the allocating PlanInfo is built only when a span collects.
func (a *Auto) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	forced := -1
	if sp == nil {
		if i, ok := a.pl.Pinned(); ok {
			n := a.pinSeq.Add(1)
			switch {
			case len(a.members) > 1 && n%planner.DefaultPinnedExploreEvery == 0:
				// Probe a non-pinned member round-robin: without these the
				// others are only ever timed on the model's own exploration
				// ticks — once per exploreEvery·reviewEvery queries — far
				// too rarely for a stale coefficient to correct before the
				// next review re-confirms a pin the workload has outgrown.
				k := int(n/planner.DefaultPinnedExploreEvery) % (len(a.members) - 1)
				if k >= i {
					k++
				}
				forced = k
			case n%planner.DefaultReviewEvery == 0:
				// Fall through to the full estimate/observe path so the
				// argmin gets a chance to revise the pin.
			default:
				a.choices[i].Add(1)
				return a.members[i].RangeReach(v, r)
			}
		}
	}
	var buf [planner.MaxMembers]float64
	works := a.pl.EstimateWorks(v, r, buf[:])
	choice, explored := forced, true
	if forced < 0 {
		choice, explored = a.pl.Choose(works)
	}
	if sp.Enabled() {
		pi := &trace.PlanInfo{
			Method:     a.members[choice].Name(),
			Explored:   explored,
			Candidates: make([]trace.PlanCandidate, len(a.members)),
		}
		for i, e := range a.members {
			pi.Candidates[i] = trace.PlanCandidate{
				Method:    e.Name(),
				Work:      works[i],
				Predicted: time.Duration(a.pl.Model().Predict(i, works[i]) * float64(time.Second)),
			}
		}
		pi.Predicted = pi.Candidates[choice].Predicted
		sp.SetPlan(pi)
	}
	// Feedback is sampled: probes and exploration picks exist to be
	// timed, traced queries are rare, but routine argmin routing only
	// feeds the EMA every DefaultObserveEvery-th query — the clock reads
	// and the CAS dominate the full-path cost otherwise.
	observe := forced >= 0 || explored || sp.Enabled() ||
		a.obsSeq.Add(1)%planner.DefaultObserveEvery == 0
	if !observe {
		a.choices[choice].Add(1)
		return a.members[choice].RangeReachTraced(v, r, sp)
	}
	//lint:ignore hotclock sampled cost-model feedback; the unobserved fast path above takes no clock reads
	start := time.Now()
	ans := a.members[choice].RangeReachTraced(v, r, sp)
	//lint:ignore hotclock sampled cost-model feedback; the unobserved fast path above takes no clock reads
	a.pl.Observe(choice, works[choice], time.Since(start).Seconds())
	a.choices[choice].Add(1)
	return ans
}

// MemoryBytes implements Engine: the members' structures, counted once
// where shared, plus the planner's estimator tables.
func (a *Auto) MemoryBytes() int64 {
	var total int64
	for _, e := range a.members {
		total += e.MemoryBytes()
	}
	return total - a.sharedBytes + a.pl.Estimator().MemoryBytes()
}

// Members returns the member engines in routing order.
func (a *Auto) Members() []Engine { return a.members }

// MemberMethods returns the member methods in routing order.
func (a *Auto) MemberMethods() []Method { return append([]Method(nil), a.methods...) }

// Choices returns a snapshot of how many queries each member has
// served, aligned with Members.
func (a *Auto) Choices() []int64 {
	out := make([]int64, len(a.choices))
	for i := range a.choices {
		out[i] = a.choices[i].Load()
	}
	return out
}

// Planner exposes the underlying planner (tests, persistence, stats).
func (a *Auto) Planner() *planner.Planner { return a.pl }

var _ Engine = (*Auto)(nil)
