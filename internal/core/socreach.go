package core

import (
	"repro/internal/bptree"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/trace"
)

// SocReach is the social-first method (paper §4.1): the interval-based
// labeling enumerates the descendant set D(v) of the query vertex, and
// every spatial descendant is tested against the region until a witness
// appears. No spatial index is involved — the paper excludes SocReach
// from the MBR-policy discussion for exactly this reason (§6.2), so the
// engine always operates under the Replicate policy.
type SocReach struct {
	prep *dataset.Prepared
	l    *labeling.Labeling
	post *bptree.Tree // optional B+-tree over post-order numbers
}

// SocReachOptions configures NewSocReach.
type SocReachOptions struct {
	// Forest is the spanning-forest policy of the labeling.
	Forest graph.ForestPolicy
	// UseBPTree evaluates the per-label range scans through a B+-tree
	// over post(v) instead of the plain post-order array — the
	// alternative §4.1 describes for networks with gaps in the
	// post-order domain (rrbench's ablation-socreach compares the two).
	UseBPTree bool
	// SkipCompression keeps the labels as descendant singletons, for
	// the compression ablation.
	SkipCompression bool
	// Parallelism bounds the build workers of the labeling: 0 or 1
	// builds sequentially, n > 1 merges label sets level-parallel. The
	// labeling is identical at any setting.
	Parallelism int
	// Span, when non-nil, accumulates named per-phase build durations.
	Span *trace.BuildSpan
}

// NewSocReach builds the SocReach engine.
func NewSocReach(prep *dataset.Prepared, opts SocReachOptions) *SocReach {
	t := opts.Span.Start()
	l := labeling.Build(prep.DAG, labeling.Options{
		Forest:          opts.Forest,
		SkipCompression: opts.SkipCompression,
		Parallelism:     opts.Parallelism,
	})
	opts.Span.End("labeling", t)
	return NewSocReachWithLabeling(prep, l, opts)
}

// NewSocReachWithLabeling builds the engine around an existing labeling
// of prep.DAG, e.g. one reloaded from disk.
func NewSocReachWithLabeling(prep *dataset.Prepared, l *labeling.Labeling, opts SocReachOptions) *SocReach {
	e := &SocReach{
		prep: prep,
		l:    l,
	}
	if opts.UseBPTree {
		n := e.l.NumVertices()
		keys := make([]int32, n)
		values := make([]int32, n)
		for p := 1; p <= n; p++ {
			keys[p-1] = int32(p)
			values[p-1] = e.l.VertexAt(int32(p))
		}
		e.post = bptree.FromSorted(keys, values)
	}
	return e
}

// Name implements Engine.
func (e *SocReach) Name() string { return "SocReach" }

// RangeReach implements Engine: every label interval [l, h] of the query
// vertex is a relational range scan over the post-order domain (paper
// Eq. 4.1); each spatial descendant's point is tested against r.
func (e *SocReach) RangeReach(v int, r geom.Rect) bool {
	return e.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine: each label of the query vertex
// counts as inspected, every descendant produced by the range scans as
// enumerated, and every spatial member's geometry test as a member
// verification; the whole scan is the enumerate stage.
func (e *SocReach) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	src := int(e.prep.CompOf(v))
	test := func(c int32) bool { // reports whether c witnesses the query
		sp.AddEnumerated(1)
		if !e.prep.HasSpatial[c] {
			return false
		}
		for _, m := range e.prep.SpatialMembers[c] {
			sp.IncMember()
			if e.prep.Witness(m, r) {
				return true
			}
		}
		return false
	}
	if e.post != nil {
		t := sp.Start()
		defer sp.End(trace.StageEnumerate, t)
		for _, iv := range e.l.Labels[src] {
			sp.AddLabels(1)
			hit := false
			e.post.Range(iv.Lo, iv.Hi, func(_, c int32) bool {
				if test(c) {
					hit = true
					return false
				}
				return true
			})
			if hit {
				return true
			}
		}
		return false
	}
	sp.AddLabels(len(e.l.Labels[src]))
	found := false
	t := sp.Start()
	e.l.Descendants(src, func(c int32) bool {
		if test(c) {
			found = true
			return false
		}
		return true
	})
	sp.End(trace.StageEnumerate, t)
	return found
}

// MemoryBytes implements Engine: the labeling (plus the optional
// B+-tree) is the whole index.
func (e *SocReach) MemoryBytes() int64 {
	total := e.l.MemoryBytes()
	if e.post != nil {
		total += e.post.MemoryBytes()
	}
	return total
}

// Labeling exposes the underlying labeling (stats and the Table 6
// reporting reuse it).
func (e *SocReach) Labeling() *labeling.Labeling { return e.l }

var (
	_ Engine = (*SocReach)(nil)
	_ Engine = (*SpaReach)(nil)
	_ Engine = (*NaiveBFS)(nil)
)
