package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/labeling"
	"repro/internal/trace"
)

// autoParityMembers are the member sets the parity suite sweeps: the
// default trio, a spatial-heavy set, and a set including the extended
// (non-persistable) GRAIL variant.
var autoParityMembers = [][]Method{
	nil, // DefaultAutoMembers
	{MethodSpaReachBFL, MethodThreeDReach},
	{MethodSocReach, MethodSpaReachGRAIL, MethodGeoReach},
}

// TestAutoParity is the planner parity suite: the composite must return
// exactly the ground-truth answer — and therefore agree with every
// member — across synthetic datasets (cyclic, acyclic, spatial-SCC),
// region sizes from tiny to everything, both MBR policies, and with the
// exploration path forced hot (Explore: 2 routes every other query
// round-robin).
func TestAutoParity(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 12; trial++ {
		var net *dataset.Network
		switch trial % 3 {
		case 0:
			net = randomNetwork(rng, 3+rng.Intn(20), 1+rng.Intn(15), true)
		case 1:
			net = randomNetwork(rng, 3+rng.Intn(20), 1+rng.Intn(15), false)
		default:
			net = spatialCycleNetwork(rng, 5+rng.Intn(25))
		}
		prep := dataset.Prepare(net)
		truth := NewNaiveBFS(net)
		for _, members := range autoParityMembers {
			for _, policy := range []dataset.SCCPolicy{dataset.Replicate, dataset.MBR} {
				res, err := BuildMethod(prep, MethodAuto, BuildOptions{
					Policy: policy,
					Auto:   AutoOptions{Members: members, Explore: 2, Seed: int64(trial)},
				})
				if err != nil {
					t.Fatalf("trial %d members %v policy %v: %v", trial, members, policy, err)
				}
				auto := res.Engine.(*Auto)
				for q := 0; q < 30; q++ {
					v := rng.Intn(net.NumVertices())
					r := randomRegion(rng)
					if q%10 == 0 {
						r = randomRegion(rng).Union(randomRegion(rng)) // larger sweep point
					}
					want := truth.RangeReach(v, r)
					if got := auto.RangeReach(v, r); got != want {
						t.Fatalf("trial %d members %v policy %v: Auto(%d, %v) = %v, want %v",
							trial, members, policy, v, r, got, want)
					}
					for _, e := range auto.Members() {
						if got := e.RangeReach(v, r); got != want {
							t.Fatalf("trial %d: member %s disagrees at (%d, %v)", trial, e.Name(), v, r)
						}
					}
				}
				total := int64(0)
				for _, c := range auto.Choices() {
					total += c
				}
				if total != 30 {
					t.Fatalf("choice tallies sum to %d, want 30 routed queries", total)
				}
			}
		}
	}
}

// TestAutoSharesLabeling checks the core satellite: members that consume
// a forward labeling receive the *same* labeling object instead of each
// recomputing SCC condensation + intervals.
func TestAutoSharesLabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	prep := dataset.Prepare(randomNetwork(rng, 40, 25, true))
	res, err := BuildMethod(prep, MethodAuto, BuildOptions{
		Auto: AutoOptions{
			Members:   []Method{MethodSocReach, MethodSpaReachINT, MethodThreeDReach, MethodThreeDReachRev},
			Calibrate: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	auto := res.Engine.(*Auto)
	soc := auto.Members()[0].(*SocReach)
	spa := auto.Members()[1].(*SpaReach)
	threeD := auto.Members()[2].(*ThreeDReach)
	rev := auto.Members()[3].(*ThreeDReachRev)
	if spa.reach.(*labeling.Labeling) != soc.l {
		t.Error("SpaReach-INT built its own labeling instead of sharing SocReach's")
	}
	if threeD.l != soc.l {
		t.Error("3DReach built its own labeling instead of sharing SocReach's")
	}
	if rev.rev == soc.l {
		t.Error("3DReach-Rev shares the forward labeling; it needs the reversed one")
	}

	// The dedup must show up in the accounting: net of the estimator's
	// own tables, the composite's footprint is smaller than the sum of
	// its members (three of which would otherwise own a labeling copy).
	var sum int64
	for _, e := range auto.Members() {
		sum += e.MemoryBytes()
	}
	engines := auto.MemoryBytes() - auto.Planner().Estimator().MemoryBytes()
	if engines >= sum {
		t.Errorf("member bytes %d not deduplicated below member sum %d", engines, sum)
	}
}

// TestAutoBuildErrors exercises the composite's input validation.
func TestAutoBuildErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	prep := dataset.Prepare(randomNetwork(rng, 10, 8, false))
	cases := []struct {
		name    string
		members []Method
	}{
		{"self-referential", []Method{MethodAuto}},
		{"duplicate", []Method{MethodSocReach, MethodSocReach}},
		{"too many", []Method{0, 1, 2, 3, 4, 5, 6, 7, 8}},
		{"unknown", []Method{Method(99)}},
	}
	for _, tc := range cases {
		if _, err := BuildAuto(prep, BuildOptions{Auto: AutoOptions{Members: tc.members, Calibrate: -1}}); err == nil {
			t.Errorf("%s member set accepted", tc.name)
		}
	}
}

// TestAutoMBRKeepsNonMBRMembers checks per-member policy handling: an
// MBR composite that includes SocReach (no MBR variant) must still
// build, with SocReach silently running Replicate.
func TestAutoMBRKeepsNonMBRMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	net := spatialCycleNetwork(rng, 60)
	prep := dataset.Prepare(net)
	res, err := BuildMethod(prep, MethodAuto, BuildOptions{
		Policy: dataset.MBR,
		Auto:   AutoOptions{Members: []Method{MethodSocReach, MethodSpaReachINT}, Calibrate: -1},
	})
	if err != nil {
		t.Fatalf("MBR composite with SocReach member: %v", err)
	}
	truth := NewNaiveBFS(net)
	for q := 0; q < 40; q++ {
		v := rng.Intn(net.NumVertices())
		r := randomRegion(rng)
		if got, want := res.Engine.RangeReach(v, r), truth.RangeReach(v, r); got != want {
			t.Fatalf("Auto/MBR(%d, %v) = %v, want %v", v, r, got, want)
		}
	}
}

// TestAutoTracePlan checks the traced path reports the routing decision
// and per-candidate predictions.
func TestAutoTracePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	net := randomNetwork(rng, 30, 20, true)
	prep := dataset.Prepare(net)
	auto, err := BuildAuto(prep, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sp trace.Span
	auto.RangeReachTraced(rng.Intn(net.NumVertices()), randomRegion(rng), &sp)
	if sp.Plan == nil {
		t.Fatal("traced auto query left Span.Plan nil")
	}
	if len(sp.Plan.Candidates) != len(auto.Members()) {
		t.Fatalf("plan has %d candidates, want %d", len(sp.Plan.Candidates), len(auto.Members()))
	}
	found := false
	for _, c := range sp.Plan.Candidates {
		if c.Method == sp.Plan.Method {
			found = true
			if c.Predicted != sp.Plan.Predicted {
				t.Error("chosen candidate's prediction differs from plan prediction")
			}
		}
		if c.Predicted <= 0 {
			t.Errorf("candidate %s has non-positive prediction %v", c.Method, c.Predicted)
		}
	}
	if !found {
		t.Errorf("chosen method %q not among candidates", sp.Plan.Method)
	}

	// The untraced path must not record a plan anywhere (nil span is
	// exercised simply by not panicking and answering consistently).
	if got, want := auto.RangeReach(0, randomRegion(rng)), auto.RangeReach(0, randomRegion(rng)); got != want {
		_ = got // answers on the same query must be stable
		t.Error("untraced auto answers unstable")
	}
}

// TestAutoCalibrationSeedsCoefs checks the build-time microbenchmark
// actually moves the coefficients off the uniform prior.
func TestAutoCalibrationSeedsCoefs(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	prep := dataset.Prepare(randomNetwork(rng, 60, 40, true))
	auto, err := BuildAuto(prep, BuildOptions{Auto: AutoOptions{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	model := auto.Planner().Model()
	moved := false
	for i := range auto.Members() {
		c := model.Coef(i)
		if c <= 0 {
			t.Fatalf("member %d coefficient %g not positive", i, c)
		}
		if c != 1e-7 {
			moved = true
		}
	}
	if !moved {
		t.Error("calibration left every coefficient at the prior")
	}
}

// TestAutoPersistRoundtrip saves a composite and reloads it: same
// answers, same member set, and the learned coefficients survive.
func TestAutoPersistRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	net := spatialCycleNetwork(rng, 80)
	prep := dataset.Prepare(net)
	auto, err := BuildAuto(prep, BuildOptions{Auto: AutoOptions{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the feedback loop so persisted coefficients are learned ones.
	for q := 0; q < 200; q++ {
		auto.RangeReach(rng.Intn(net.NumVertices()), randomRegion(rng))
	}

	var buf bytes.Buffer
	if err := SaveEngine(&buf, auto); err != nil {
		t.Fatalf("SaveEngine: %v", err)
	}
	res, err := LoadEngine(&buf, prep, BuildOptions{})
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	if res.Method != MethodAuto {
		t.Fatalf("loaded method %v, want MethodAuto", res.Method)
	}
	loaded := res.Engine.(*Auto)
	if len(loaded.Members()) != len(auto.Members()) {
		t.Fatalf("loaded %d members, want %d", len(loaded.Members()), len(auto.Members()))
	}
	for i, e := range loaded.Members() {
		if e.Name() != auto.Members()[i].Name() {
			t.Fatalf("member %d is %s, want %s", i, e.Name(), auto.Members()[i].Name())
		}
		got := loaded.Planner().Model().Coef(i)
		want := auto.Planner().Model().Coef(i)
		if got != want {
			t.Errorf("member %d coefficient %g, want persisted %g", i, got, want)
		}
	}
	truth := NewNaiveBFS(net)
	for q := 0; q < 50; q++ {
		v := rng.Intn(net.NumVertices())
		r := randomRegion(rng)
		if got, want := loaded.RangeReach(v, r), truth.RangeReach(v, r); got != want {
			t.Fatalf("loaded Auto(%d, %v) = %v, want %v", v, r, got, want)
		}
	}
}

// TestAutoPersistNotPersistableMember keeps the ErrNotPersistable
// semantics: a composite with a GRAIL member cannot be saved, and the
// error identifies the member.
func TestAutoPersistNotPersistableMember(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	prep := dataset.Prepare(randomNetwork(rng, 15, 10, true))
	auto, err := BuildAuto(prep, BuildOptions{Auto: AutoOptions{
		Members:   []Method{MethodSocReach, MethodSpaReachGRAIL},
		Calibrate: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = SaveEngine(&buf, auto)
	if !errors.Is(err, ErrNotPersistable) {
		t.Fatalf("saving composite with GRAIL member: got %v, want ErrNotPersistable", err)
	}
}

// TestAutoConcurrentQueries hammers one composite from several
// goroutines; run under -race (ci.sh does) to validate the lock-free
// feedback and tally paths.
func TestAutoConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(257))
	net := randomNetwork(rng, 50, 30, true)
	prep := dataset.Prepare(net)
	auto, err := BuildAuto(prep, BuildOptions{Auto: AutoOptions{Explore: 3, Calibrate: -1}})
	if err != nil {
		t.Fatal(err)
	}
	truth := NewNaiveBFS(net)
	// Precompute queries and ground truth on one goroutine; rng and the
	// naive oracle are not safe for concurrent use.
	type query struct {
		v    int
		r    geom.Rect
		want bool
	}
	full := make([]query, 64)
	for i := range full {
		v := rng.Intn(net.NumVertices())
		r := randomRegion(rng)
		full[i] = query{v: v, r: r, want: truth.RangeReach(v, r)}
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for rep := 0; rep < 20; rep++ {
				for _, fq := range full {
					if auto.RangeReach(fq.v, fq.r) != fq.want {
						done <- errors.New("concurrent auto answer diverged")
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, c := range auto.Choices() {
		total += c
	}
	if want := int64(4 * 20 * len(full)); total != want {
		t.Fatalf("choice tallies sum to %d, want %d", total, want)
	}
}

// BenchmarkAutoOverhead measures the composite's per-query routing cost
// against calling the same member directly on an identical workload.
func BenchmarkAutoOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(271))
	net := spatialCycleNetwork(rng, 400)
	prep := dataset.Prepare(net)
	auto, err := BuildAuto(prep, BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	type query struct {
		v int
		r geom.Rect
	}
	qs := make([]query, 256)
	for i := range qs {
		qs[i] = query{rng.Intn(net.NumVertices()), randomRegion(rng)}
	}
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			auto.RangeReach(q.v, q.r)
		}
	})
	b.Run("member", func(b *testing.B) {
		m := auto.Members()[0]
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			m.RangeReach(q.v, q.r)
		}
	})
}
