package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestThreeDReachBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for trial := 0; trial < 12; trial++ {
		net := randomNetwork(rng, 5+rng.Intn(25), 2+rng.Intn(20), trial%2 == 0)
		prep := dataset.Prepare(net)
		truth := NewNaiveBFS(net)
		backends := []SpatialBackend{BackendRTree, BackendKDTree, BackendGrid}
		engines := make([]*ThreeDReach, len(backends))
		for i, b := range backends {
			engines[i] = NewThreeDReach(prep, ThreeDOptions{Backend: b})
			if engines[i].MemoryBytes() <= 0 {
				t.Fatalf("%v: non-positive memory", b)
			}
		}
		for q := 0; q < 30; q++ {
			v := rng.Intn(net.NumVertices())
			r := randomRegion(rng)
			want := truth.RangeReach(v, r)
			for i, e := range engines {
				if got := e.RangeReach(v, r); got != want {
					t.Fatalf("trial %d backend %v: RangeReach(%d, %v) = %v, want %v",
						trial, backends[i], v, r, got, want)
				}
			}
		}
	}
}

func TestSpatialBackendString(t *testing.T) {
	if BackendRTree.String() != "rtree" || BackendKDTree.String() != "kdtree" ||
		BackendGrid.String() != "grid" {
		t.Error("backend names wrong")
	}
	if SpatialBackend(9).String() == "" {
		t.Error("unknown backend string empty")
	}
}

func TestMBRPolicyIgnoresBackend(t *testing.T) {
	// The MBR policy indexes boxes, which only the R-tree supports; a
	// non-default backend must not break it.
	rng := rand.New(rand.NewSource(503))
	net := spatialCycleNetwork(rng, 40)
	prep := dataset.Prepare(net)
	truth := NewNaiveBFS(net)
	e := NewThreeDReach(prep, ThreeDOptions{Policy: dataset.MBR, Backend: BackendGrid})
	for q := 0; q < 30; q++ {
		v := rng.Intn(net.NumVertices())
		r := randomRegion(rng)
		if e.RangeReach(v, r) != truth.RangeReach(v, r) {
			t.Fatalf("MBR policy with backend option wrong at v=%d", v)
		}
	}
}
