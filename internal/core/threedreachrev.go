package core

import (
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/labeling"
	"repro/internal/pool"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// ThreeDReachRev is the line-based 3DReach variant (paper §4.2, second
// half): it builds the *reversed* interval-based labeling — constructed
// by running the same algorithm on the network with all edges flipped —
// in which every label [l, h] ∈ L̄(u) covers post-order numbers of u's
// ancestors. A spatial vertex u is then modeled as a set of vertical 3D
// line segments, one per reversed label, and RangeReach(G, v, R) becomes
// a single 3D range query: the plane with base R at height post(v). The
// answer is positive iff the plane cuts a segment.
type ThreeDReachRev struct {
	prep   *dataset.Prepared
	policy dataset.SCCPolicy
	rev    *labeling.Labeling // labeling of the reversed condensed DAG
	tree   rtree.Searcher[geom.Box3]
}

// NewThreeDReachRev builds the line-based 3DReach-Rev engine.
func NewThreeDReachRev(prep *dataset.Prepared, opts ThreeDOptions) *ThreeDReachRev {
	t := opts.Span.Start()
	rev := labeling.Build(prep.DAG.Reverse(), labeling.Options{Forest: opts.Forest, Parallelism: opts.Parallelism})
	opts.Span.End("labeling", t)
	return NewThreeDReachRevWithLabeling(prep, rev, opts)
}

// NewThreeDReachRevWithLabeling builds the engine around an existing
// *reversed* labeling (built over prep.DAG.Reverse()), e.g. one reloaded
// from disk.
func NewThreeDReachRevWithLabeling(prep *dataset.Prepared, rev *labeling.Labeling, opts ThreeDOptions) *ThreeDReachRev {
	e := &ThreeDReachRev{prep: prep, policy: opts.Policy, rev: rev}
	t := opts.Span.Start()
	defer opts.Span.End("spatial", t)

	var entries []rtree.Entry[geom.Box3]
	if opts.Policy == dataset.MBR {
		for c := range prep.Members {
			if !prep.HasSpatial[c] {
				continue
			}
			for _, iv := range rev.Labels[c] {
				entries = append(entries, rtree.Entry[geom.Box3]{
					Box: geom.Box3FromRect(prep.CompMBR[c], float64(iv.Lo), float64(iv.Hi)),
					ID:  int32(c),
				})
			}
		}
	} else {
		for v, s := range prep.Net.Spatial {
			if !s {
				continue
			}
			c := prep.CompOf(v)
			// Vertical segment for point vertices; for extended
			// geometries (paper footnote 1) the segment widens to the
			// box geometry × label range, still exact.
			g := prep.Net.GeometryOf(v)
			for _, iv := range rev.Labels[c] {
				entries = append(entries, rtree.Entry[geom.Box3]{
					Box: geom.Box3FromRect(g, float64(iv.Lo), float64(iv.Hi)),
					ID:  int32(v),
				})
			}
		}
	}
	e.tree = rtree.BulkLoadPool(entries, opts.Fanout, pool.New(max(opts.Parallelism, 1)))
	// Segments and boxes are stored alike (min/max corners), matching the
	// paper's observation about Boost's R-tree (§6.2): no leaf-payload
	// override either way.
	return e
}

// Name implements Engine.
func (e *ThreeDReachRev) Name() string { return "3DReach-Rev" }

// RangeReach implements Engine with a single plane-shaped 3D range query
// at the query vertex's post-order height.
func (e *ThreeDReachRev) RangeReach(v int, r geom.Rect) bool {
	return e.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine: the single plane query is the
// spatial stage (3DReach-Rev inspects no label of the query vertex —
// the reversed labels live inside the indexed segments); MBR member
// confirmations count as member verifications.
func (e *ThreeDReachRev) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	src := int(e.prep.CompOf(v))
	z := float64(e.rev.PostOf(src))
	q := geom.Box3FromRect(r, z, z)
	if e.policy == dataset.Replicate {
		t := sp.Start()
		_, ok := e.tree.SearchAnyTraced(q, sp)
		sp.End(trace.StageSpatial, t)
		return ok
	}
	hit := false
	t := sp.Start()
	e.tree.SearchTraced(q, sp, func(entry rtree.Entry[geom.Box3]) bool {
		if r.ContainsRect(entry.Box.Rect()) {
			hit = true
			return false
		}
		for _, m := range e.prep.SpatialMembers[entry.ID] {
			sp.IncMember()
			if e.prep.Witness(m, r) {
				hit = true
				return false
			}
		}
		return true
	})
	sp.End(trace.StageSpatial, t)
	return hit
}

// MemoryBytes implements Engine: reversed labeling plus 3D R-tree.
func (e *ThreeDReachRev) MemoryBytes() int64 {
	return e.rev.MemoryBytes() + e.tree.MemoryBytes()
}

// Labeling exposes the reversed labeling for stats reporting (Table 6's
// "reversed" columns).
func (e *ThreeDReachRev) Labeling() *labeling.Labeling { return e.rev }

var _ Engine = (*ThreeDReachRev)(nil)
