// Package core implements the RangeReach evaluation methods of the paper:
//
//   - SpaReach-BFL and SpaReach-INT — the spatial-first baselines (§2.2.1):
//     a 2D R-tree finds the spatial vertices inside the query region, then
//     a reachability index (BFL or interval labels) probes each candidate;
//   - GeoReach — the prior state of the art (§2.2.2), wrapped from
//     internal/georeach;
//   - SocReach — the social-first method (§4.1): interval labels enumerate
//     the descendants of the query vertex, which are then tested against
//     the region;
//   - 3DReach — the point-based 3D transformation (§4.2): one 3D range
//     query (cuboid) per label of the query vertex over an R-tree of
//     (x, y, post) points;
//   - 3DReach-Rev — the line-based variant (§4.2): spatial vertices become
//     vertical segments from the reversed labeling and a query is a single
//     plane-shaped 3D range query at post(v).
//
// Every engine answers queries on the SCC-condensed network (paper §5)
// under either the Replicate or the MBR spatial policy, and is verified
// against the NaiveBFS ground truth in the package tests.
package core

import (
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/trace"
)

// Engine answers RangeReach queries over a prepared geosocial network.
type Engine interface {
	// Name returns the method name as used in the paper's plots.
	Name() string
	// RangeReach reports whether the original vertex v can reach a
	// spatial vertex whose point lies inside r.
	RangeReach(v int, r geom.Rect) bool
	// RangeReachTraced is RangeReach with per-stage instrumentation
	// accumulated into sp. A nil sp must behave exactly like RangeReach
	// — implementations thread the span down through nil-safe hooks, so
	// the disabled path costs nothing beyond predictable branches.
	RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool
	// MemoryBytes returns the footprint of the engine's index
	// structures (Table 4 accounting). The underlying network and its
	// condensation are shared by all engines and not counted.
	MemoryBytes() int64
}

// reachIndex is the reachability-index shape shared by bfl.Index and
// labeling.Labeling.
type reachIndex interface {
	Reach(v, u int) bool
	MemoryBytes() int64
}

// tracedReach is the optional traced-probe extension of reachIndex;
// bfl.Index and labeling.Labeling implement it, the extended SpaReach
// probes (PLL, Feline, GRAIL) fall back to plain Reach.
type tracedReach interface {
	ReachTraced(v, u int, sp *trace.Span) bool
}

// NaiveBFS is the index-free ground truth: breadth-first search over the
// original network, testing every visited spatial vertex against the
// region. Tests compare every engine against it.
type NaiveBFS struct {
	net *dataset.Network
}

// NewNaiveBFS returns the ground-truth engine for net.
func NewNaiveBFS(net *dataset.Network) *NaiveBFS {
	return &NaiveBFS{net: net}
}

// Name implements Engine.
func (e *NaiveBFS) Name() string { return "NaiveBFS" }

// RangeReach implements Engine by plain BFS. A spatial vertex witnesses
// the query when its geometry intersects the region (point containment
// for point vertices).
func (e *NaiveBFS) RangeReach(v int, r geom.Rect) bool {
	return e.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine: every BFS-expanded vertex counts
// as a visited graph vertex, every spatial vertex's geometry test as a
// member verification, and the whole search as the traverse stage.
func (e *NaiveBFS) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	found := false
	t := sp.Start()
	e.net.Graph.BFS(v, func(u int) bool {
		sp.IncGraphVisited()
		if e.net.Spatial[u] {
			sp.IncMember()
			if r.Intersects(e.net.GeometryOf(u)) {
				found = true
				return false
			}
		}
		return true
	})
	sp.End(trace.StageTraverse, t)
	return found
}

// MemoryBytes implements Engine; the ground truth stores nothing.
func (e *NaiveBFS) MemoryBytes() int64 { return 0 }
