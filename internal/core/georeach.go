package core

import (
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/georeach"
	"repro/internal/trace"
)

// GeoReach wraps the SPA-Graph method of Sarwat and Sun (§2.2.2) behind
// the Engine interface. GeoReach always operates under the non-MBR
// (Replicate) principle, by design.
type GeoReach struct {
	idx *georeach.Index
}

// GeoReachOptions configures NewGeoReach.
type GeoReachOptions struct {
	// Params are the SPA-Graph construction parameters; zero values
	// select the documented defaults. Params.Parallelism bounds the
	// classification workers.
	Params georeach.Params
	// Span, when non-nil, accumulates named per-phase build durations.
	Span *trace.BuildSpan
}

// NewGeoReach builds the GeoReach engine.
func NewGeoReach(prep *dataset.Prepared, opts GeoReachOptions) *GeoReach {
	t := opts.Span.Start()
	defer opts.Span.End("spagraph", t)
	return &GeoReach{idx: georeach.Build(prep, opts.Params)}
}

// Name implements Engine.
func (e *GeoReach) Name() string { return "GeoReach" }

// RangeReach implements Engine.
func (e *GeoReach) RangeReach(v int, r geom.Rect) bool {
	return e.idx.RangeReach(v, r)
}

// RangeReachTraced implements Engine, delegating to the SPA-Graph's
// instrumented BFS.
func (e *GeoReach) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	return e.idx.RangeReachTraced(v, r, sp)
}

// MemoryBytes implements Engine.
func (e *GeoReach) MemoryBytes() int64 { return e.idx.MemoryBytes() }

// Index exposes the SPA-Graph for stats reporting.
func (e *GeoReach) Index() *georeach.Index { return e.idx }

var _ Engine = (*GeoReach)(nil)
