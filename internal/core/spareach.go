package core

import (
	"sync"

	"repro/internal/bfl"
	"repro/internal/dataset"
	"repro/internal/feline"
	"repro/internal/geom"
	"repro/internal/grail"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/pll"
	"repro/internal/pool"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// SpaReach is the spatial-first approach (paper §2.2.1): a 2D R-tree
// range query finds the spatial vertices inside the region and a
// reachability index probes each candidate from the query vertex until a
// witness is found. The reachability index is pluggable: BFL for
// SpaReach-BFL, interval labels for SpaReach-INT (§6.1).
type SpaReach struct {
	name      string
	prep      *dataset.Prepared
	policy    dataset.SCCPolicy
	reach     reachIndex
	tree      rtree.Searcher[geom.Rect]
	streaming bool

	// scratch pools the materialized candidate sets so concurrent
	// queries each get their own buffers without per-query allocation.
	scratch sync.Pool
}

// spaScratch is one query's candidate buffers.
type spaScratch struct {
	candidates []int32
	candBoxes  []geom.Rect
}

// SpaReachOptions configures NewSpaReachBFL / NewSpaReachINT.
type SpaReachOptions struct {
	// Policy selects the SCC spatial policy (default Replicate, the
	// winner of Figure 5).
	Policy dataset.SCCPolicy
	// Fanout is the R-tree fan-out (0 = rtree.DefaultMaxEntries).
	Fanout int
	// BFLBits is the Bloom filter width for SpaReach-BFL (0 = default).
	BFLBits int
	// Forest is the spanning-forest policy for SpaReach-INT (the zero
	// value is the DFS default).
	Forest graph.ForestPolicy
	// Streaming interleaves the two phases: reachability probes run
	// inside the R-tree traversal and the query stops at the first
	// witness instead of materializing the full candidate set. This is
	// an *optimization beyond the paper's SpaReach* (the original
	// algorithm of [47] materializes first, which is what makes it
	// sensitive to spatial selectivity); rrbench's ablation-streaming
	// quantifies the difference. Default false = faithful.
	Streaming bool
	// Parallelism bounds the build workers: 0 or 1 builds sequentially,
	// n > 1 constructs the reachability index and the 2D R-tree
	// concurrently and parallelizes each internally where the structure
	// allows. The built engine is identical at any setting.
	Parallelism int
	// Span, when non-nil, accumulates named per-phase build durations.
	Span *trace.BuildSpan
}

// NewSpaReachBFL builds the SpaReach-BFL engine.
func NewSpaReachBFL(prep *dataset.Prepared, opts SpaReachOptions) *SpaReach {
	return newSpaReachPipelined("SpaReach-BFL", prep, opts, "reach", func() reachIndex {
		return bfl.Build(prep.DAG, bfl.Options{Bits: opts.BFLBits, Parallelism: opts.Parallelism})
	})
}

// NewSpaReachINT builds the SpaReach-INT engine, which uses the paper's
// interval-based labeling for the reachability probes.
func NewSpaReachINT(prep *dataset.Prepared, opts SpaReachOptions) *SpaReach {
	return newSpaReachPipelined("SpaReach-INT", prep, opts, "labeling", func() reachIndex {
		return labeling.Build(prep.DAG, labeling.Options{Forest: opts.Forest, Parallelism: opts.Parallelism})
	})
}

// NewSpaReachINTWithLabeling builds SpaReach-INT around an existing
// forward labeling of prep.DAG, so composite builds (MethodAuto) can
// share one labeling across engines instead of recomputing it.
func NewSpaReachINTWithLabeling(prep *dataset.Prepared, l *labeling.Labeling, opts SpaReachOptions) *SpaReach {
	return newSpaReach("SpaReach-INT", prep, l, opts)
}

// NewSpaReachPLL builds the SpaReach-PLL engine, the 2-hop-labeled
// spatial-first variant Sarwat and Sun evaluate in [47] (paper §2.2.1).
func NewSpaReachPLL(prep *dataset.Prepared, opts SpaReachOptions) *SpaReach {
	return newSpaReachPipelined("SpaReach-PLL", prep, opts, "reach", func() reachIndex {
		return pll.Build(prep.DAG, pll.Options{})
	})
}

// NewSpaReachFeline builds the SpaReach-Feline engine, the second
// spatial-first variant of [47]: reachability probes through Feline's
// two-topological-order dominance test with pruned-DFS fallback.
func NewSpaReachFeline(prep *dataset.Prepared, opts SpaReachOptions) *SpaReach {
	return newSpaReachPipelined("SpaReach-Feline", prep, opts, "reach", func() reachIndex {
		return feline.Build(prep.DAG)
	})
}

// NewSpaReachGRAIL builds a spatial-first variant probing through GRAIL
// randomized interval labels (paper §7.1).
func NewSpaReachGRAIL(prep *dataset.Prepared, opts SpaReachOptions) *SpaReach {
	return newSpaReachPipelined("SpaReach-GRAIL", prep, opts, "reach", func() reachIndex {
		return grail.Build(prep.DAG, grail.Options{})
	})
}

// newSpaReachPipelined assembles a SpaReach engine whose two independent
// build phases — the reachability index and the 2D R-tree — run
// concurrently when opts.Parallelism allows (they only read prep). On a
// sequential pool Run degrades to two inline calls, so the 0/1 setting
// is exactly the old code path.
func newSpaReachPipelined(name string, prep *dataset.Prepared, opts SpaReachOptions, phase string, build func() reachIndex) *SpaReach {
	p := pool.New(max(opts.Parallelism, 1))
	var reach reachIndex
	var tree *rtree.Tree[geom.Rect]
	_ = p.Run(
		func() error {
			t := opts.Span.Start()
			reach = build()
			opts.Span.End(phase, t)
			return nil
		},
		func() error {
			t := opts.Span.Start()
			tree = buildSpatialTree(prep, opts.Policy, opts.Fanout, p)
			opts.Span.End("spatial", t)
			return nil
		},
	)
	return newSpaReachWithTree(name, prep, reach, tree, opts)
}

func newSpaReach(name string, prep *dataset.Prepared, reach reachIndex, opts SpaReachOptions) *SpaReach {
	t := opts.Span.Start()
	tree := buildSpatialTree(prep, opts.Policy, opts.Fanout, pool.New(max(opts.Parallelism, 1)))
	opts.Span.End("spatial", t)
	return newSpaReachWithTree(name, prep, reach, tree, opts)
}

func newSpaReachWithTree(name string, prep *dataset.Prepared, reach reachIndex, tree rtree.Searcher[geom.Rect], opts SpaReachOptions) *SpaReach {
	e := &SpaReach{
		name: name, prep: prep, policy: opts.Policy,
		reach: reach, streaming: opts.Streaming, tree: tree,
	}
	e.scratch.New = func() any { return &spaScratch{} }
	return e
}

// buildSpatialTree bulk-loads the 2D R-tree over the network's spatial
// information: one point per spatial vertex under Replicate (entry id =
// original vertex), or one rectangle per component with spatial members
// under MBR (entry id = component). A non-sequential pool parallelizes
// the STR packing; the tree is identical either way.
func buildSpatialTree(prep *dataset.Prepared, policy dataset.SCCPolicy, fanout int, p *pool.Pool) *rtree.Tree[geom.Rect] {
	var entries []rtree.Entry[geom.Rect]
	if policy == dataset.MBR {
		for c := range prep.Members {
			if prep.HasSpatial[c] {
				entries = append(entries, rtree.Entry[geom.Rect]{
					Box: prep.CompMBR[c],
					ID:  int32(c),
				})
			}
		}
	} else {
		for v, s := range prep.Net.Spatial {
			if s {
				entries = append(entries, rtree.Entry[geom.Rect]{
					Box: prep.Net.GeometryOf(v),
					ID:  int32(v),
				})
			}
		}
	}
	t := rtree.BulkLoadPool(entries, fanout, p)
	if policy == dataset.Replicate && !prep.Net.HasExtents() {
		t.SetLeafBoundBytes(16) // points, not rectangles
	}
	return t
}

// Name implements Engine.
func (e *SpaReach) Name() string { return e.name }

// RangeReach implements Engine following the SpaReach algorithm of [47]
// (paper §2.2.1): first the spatial range query materializes every
// spatial vertex inside the region, then one reachability probe runs per
// candidate until a witness answers TRUE. The two phases are deliberate
// — SpaReach's sensitivity to the spatial selectivity (paper §6.4) stems
// from materializing the full candidate set before any graph work.
func (e *SpaReach) RangeReach(v int, r geom.Rect) bool {
	return e.RangeReachTraced(v, r, nil)
}

// RangeReachTraced implements Engine: the phase-1 R-tree search is the
// spatial stage and every materialized entry a candidate; phase 2 is
// the reach stage with one counted probe per candidate (traced probes
// additionally expose the inner label/DFS work of INT and BFL), plus
// member verifications under the MBR policy.
func (e *SpaReach) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	src := int(e.prep.CompOf(v))
	if e.streaming {
		return e.rangeReachStreaming(src, r, sp)
	}
	s := e.scratch.Get().(*spaScratch)
	defer e.scratch.Put(s)

	// Phase 1: evaluate SRange(P, R).
	s.candidates = s.candidates[:0]
	s.candBoxes = s.candBoxes[:0]
	t := sp.Start()
	e.tree.SearchTraced(geom.Rect(r), sp, func(entry rtree.Entry[geom.Rect]) bool {
		s.candidates = append(s.candidates, entry.ID)
		if e.policy == dataset.MBR {
			s.candBoxes = append(s.candBoxes, entry.Box)
		}
		return true
	})
	sp.End(trace.StageSpatial, t)

	// Phase 2: GReach(G, v, u) per candidate, stopping at the first
	// positive answer.
	t = sp.Start()
	defer sp.End(trace.StageReach, t)
	for i, id := range s.candidates {
		sp.IncCandidate()
		if e.policy == dataset.MBR {
			c := int(id)
			if !e.probe(src, c, sp) {
				continue
			}
			// The MBR only approximates the component's points; confirm
			// with the exact members unless it lies fully inside R.
			if r.ContainsRect(s.candBoxes[i]) {
				return true
			}
			for _, m := range e.prep.SpatialMembers[c] {
				sp.IncMember()
				if e.prep.Witness(m, r) {
					return true
				}
			}
			continue
		}
		if e.probe(src, int(e.prep.CompOf(int(id))), sp) {
			return true
		}
	}
	return false
}

// probe issues one counted reachability probe, routing through the
// traced variant when the index supports it (BFL, interval labels).
func (e *SpaReach) probe(src, dst int, sp *trace.Span) bool {
	sp.IncReachProbe()
	if sp.Enabled() {
		if tr, ok := e.reach.(tracedReach); ok {
			return tr.ReachTraced(src, dst, sp)
		}
	}
	return e.reach.Reach(src, dst)
}

// rangeReachStreaming is the optimized single-pass variant: probes run
// inside the R-tree traversal, so the first witness aborts the spatial
// search as well. The interleaved pass is timed wholesale as the
// spatial stage; candidates, probes and member verifications are still
// counted individually.
func (e *SpaReach) rangeReachStreaming(src int, r geom.Rect, sp *trace.Span) bool {
	found := false
	t := sp.Start()
	e.tree.SearchTraced(geom.Rect(r), sp, func(entry rtree.Entry[geom.Rect]) bool {
		sp.IncCandidate()
		if e.policy == dataset.MBR {
			c := int(entry.ID)
			if !e.probe(src, c, sp) {
				return true
			}
			if r.ContainsRect(entry.Box) {
				found = true
				return false
			}
			for _, m := range e.prep.SpatialMembers[c] {
				sp.IncMember()
				if e.prep.Witness(m, r) {
					found = true
					return false
				}
			}
			return true
		}
		if e.probe(src, int(e.prep.CompOf(int(entry.ID))), sp) {
			found = true
			return false
		}
		return true
	})
	sp.End(trace.StageSpatial, t)
	return found
}

// MemoryBytes implements Engine: reachability index plus 2D R-tree.
func (e *SpaReach) MemoryBytes() int64 {
	return e.reach.MemoryBytes() + e.tree.MemoryBytes()
}
