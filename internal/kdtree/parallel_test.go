package kdtree

import (
	"math/rand"
	"testing"

	"repro/internal/pool"
)

// TestBuildPoolIdentical asserts that the forked left/right subtree
// builds produce the exact point permutation and axis tags of the
// sequential build. Sizes straddle parallelCutoff so both the forked and
// the inline paths are exercised.
func TestBuildPoolIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 2, 100, parallelCutoff - 1, parallelCutoff, 3 * parallelCutoff} {
		for _, dims := range []int{2, 3} {
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = Point{
					X:  rng.Float64() * 100,
					Y:  rng.Float64() * 100,
					Z:  float64(rng.Intn(1000)),
					ID: int32(i),
				}
			}
			seq := Build(append([]Point(nil), pts...), dims)
			for _, par := range []int{2, 8} {
				got := BuildPool(append([]Point(nil), pts...), dims, pool.New(par))
				if err := got.Validate(); err != nil {
					t.Fatalf("n=%d dims=%d par=%d: %v", n, dims, par, err)
				}
				for i := range seq.pts {
					if seq.pts[i] != got.pts[i] || seq.axis[i] != got.axis[i] {
						t.Fatalf("n=%d dims=%d par=%d: tree differs at slot %d", n, dims, par, i)
					}
				}
			}
		}
	}
}
