package kdtree

import (
	"math/rand"
	"testing"
)

func randomPoints(rng *rand.Rand, n int, dims int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X:  rng.Float64() * 100,
			Y:  rng.Float64() * 100,
			ID: int32(i),
		}
		if dims == 3 {
			pts[i].Z = float64(rng.Intn(1000))
		}
	}
	return pts
}

func bruteSearch(pts []Point, min, max [3]float64, dims int) map[int32]bool {
	out := make(map[int32]bool)
	for _, p := range pts {
		ok := p.X >= min[0] && p.X <= max[0] && p.Y >= min[1] && p.Y <= max[1]
		if dims == 3 {
			ok = ok && p.Z >= min[2] && p.Z <= max[2]
		}
		if ok {
			out[p.ID] = true
		}
	}
	return out
}

func TestSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range []int{2, 3} {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(600)
			pts := randomPoints(rng, n, dims)
			ref := append([]Point(nil), pts...)
			tr := Build(pts, dims)
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("dims %d trial %d: %s", dims, trial, msg)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for q := 0; q < 25; q++ {
				min := [3]float64{rng.Float64() * 100, rng.Float64() * 100, float64(rng.Intn(1000))}
				max := [3]float64{min[0] + rng.Float64()*30, min[1] + rng.Float64()*30, min[2] + float64(rng.Intn(300))}
				want := bruteSearch(ref, min, max, dims)
				got := make(map[int32]bool)
				tr.Search(min, max, func(p Point) bool {
					got[p.ID] = true
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("dims %d: got %d, want %d", dims, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("dims %d: missing %d", dims, id)
					}
				}
				if tr.Any(min, max) != (len(want) > 0) {
					t.Fatalf("Any wrong")
				}
			}
		}
	}
}

func TestEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr := Build(randomPoints(rng, 500, 3), 3)
	count := 0
	completed := tr.Search([3]float64{0, 0, 0}, [3]float64{100, 100, 1000}, func(Point) bool {
		count++
		return count < 4
	})
	if completed || count != 4 {
		t.Errorf("completed=%v count=%d", completed, count)
	}
}

func TestDuplicatesAndDegenerate(t *testing.T) {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{X: 5, Y: 5, Z: 5, ID: int32(i)}
	}
	tr := Build(pts, 3)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	count := 0
	tr.Search([3]float64{0, 0, 0}, [3]float64{10, 10, 10}, func(Point) bool {
		count++
		return true
	})
	if count != 64 {
		t.Errorf("count = %d, want 64", count)
	}
	if tr.Any([3]float64{6, 6, 6}, [3]float64{10, 10, 10}) {
		t.Error("phantom hit")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := Build(nil, 3)
	if tr.Any([3]float64{0, 0, 0}, [3]float64{1, 1, 1}) {
		t.Error("empty tree hit")
	}
	tr = Build([]Point{{X: 1, Y: 2, Z: 3, ID: 7}}, 3)
	if !tr.Any([3]float64{0, 0, 0}, [3]float64{5, 5, 5}) {
		t.Error("single point missed")
	}
}

func TestPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Build(nil, 4)
}

func TestMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := Build(randomPoints(rng, 100, 3), 3)
	if tr.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
}
