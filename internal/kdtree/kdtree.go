// Package kdtree implements a static k-d tree over 2D or 3D points — a
// space-oriented-partitioning alternative (paper §7.2) to the R-tree for
// the point indexes of SpaReach and 3DReach. The tree is built balanced
// by median splits over a cycling axis and answers axis-aligned range
// queries with early termination.
package kdtree

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Point is an indexed point: up to three coordinates plus the caller's
// identifier. For 2D use, Z stays zero and queries pass Dims == 2.
type Point struct {
	X, Y, Z float64
	ID      int32
}

// coord returns the point's coordinate along axis d.
func (p Point) coord(d int) float64 {
	switch d {
	case 0:
		return p.X
	case 1:
		return p.Y
	default:
		return p.Z
	}
}

// Tree is a balanced k-d tree. The zero value is unusable; call Build.
type Tree struct {
	dims int
	// Implicit binary tree over the points slice: node i splits its
	// subrange at the median; stored as a flattened recursion.
	pts  []Point
	axis []int8 // split axis per subrange root, aligned with pts
}

// Build constructs a tree over the given points with the given
// dimensionality (2 or 3). The points slice is reordered in place.
func Build(pts []Point, dims int) *Tree {
	return BuildPool(pts, dims, nil)
}

// parallelCutoff is the subrange size below which BuildPool stops
// forking: quickselect over a few thousand points is cheaper than a
// goroutine handoff.
const parallelCutoff = 4096

// BuildPool is Build with a worker pool: after each median split the two
// subtrees build concurrently while the subrange is larger than a cutoff.
// A nil or sequential pool is exactly Build. The tree is identical either
// way — the split point and the quickselect are deterministic, and the
// two recursions touch disjoint subranges of pts and axis.
func BuildPool(pts []Point, dims int, p *pool.Pool) *Tree {
	if dims != 2 && dims != 3 {
		panic("kdtree: dims must be 2 or 3")
	}
	t := &Tree{dims: dims, pts: pts, axis: make([]int8, len(pts))}
	if p.Sequential() {
		t.build(0, len(pts), 0)
	} else {
		t.buildPool(0, len(pts), 0, p)
	}
	return t
}

// build organizes pts[lo:hi] as a subtree split on the given axis: the
// median lands at the subrange midpoint, smaller coordinates left,
// larger right.
func (t *Tree) build(lo, hi, depth int) {
	if hi-lo <= 1 {
		return
	}
	axis := depth % t.dims
	mid := (lo + hi) / 2
	nthElement(t.pts[lo:hi], mid-lo, axis)
	t.axis[mid] = int8(axis)
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// buildPool is build with the left/right recursions forked while the
// subrange exceeds parallelCutoff.
func (t *Tree) buildPool(lo, hi, depth int, p *pool.Pool) {
	if hi-lo <= 1 {
		return
	}
	axis := depth % t.dims
	mid := (lo + hi) / 2
	nthElement(t.pts[lo:hi], mid-lo, axis)
	t.axis[mid] = int8(axis)
	if hi-lo < parallelCutoff {
		t.build(lo, mid, depth+1)
		t.build(mid+1, hi, depth+1)
		return
	}
	_ = p.Run(
		func() error { t.buildPool(lo, mid, depth+1, p); return nil },
		func() error { t.buildPool(mid+1, hi, depth+1, p); return nil },
	)
}

// nthElement partially sorts pts so that pts[n] is the element that
// would be at position n in axis order (quickselect).
func nthElement(pts []Point, n, axis int) {
	lo, hi := 0, len(pts)
	for hi-lo > 1 {
		// Median-of-three pivot.
		p := pts[lo].coord(axis)
		q := pts[(lo+hi)/2].coord(axis)
		r := pts[hi-1].coord(axis)
		pivot := p
		if (q >= p && q <= r) || (q <= p && q >= r) {
			pivot = q
		} else if (r >= p && r <= q) || (r <= p && r >= q) {
			pivot = r
		}
		i, j := lo, hi-1
		for i <= j {
			for pts[i].coord(axis) < pivot {
				i++
			}
			for pts[j].coord(axis) > pivot {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		switch {
		case n <= j:
			hi = j + 1
		case n >= i:
			lo = i
		default:
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Search calls fn for every point inside the box [min, max] (boundary
// inclusive; for 2D trees the Z bounds are ignored). If fn returns false
// the search stops and Search returns false.
func (t *Tree) Search(min, max [3]float64, fn func(p Point) bool) bool {
	return t.SearchTraced(min, max, nil, fn)
}

// SearchTraced is Search with instrumentation: every expanded subrange
// counts as an index node and every point compared against the box as a
// tested entry. A nil sp makes it exactly Search.
func (t *Tree) SearchTraced(min, max [3]float64, sp *trace.Span, fn func(p Point) bool) bool {
	if t.dims == 2 {
		min[2], max[2] = 0, 0
	}
	return t.search(0, len(t.pts), 0, min, max, sp, fn)
}

func (t *Tree) search(lo, hi, depth int, min, max [3]float64, sp *trace.Span, fn func(p Point) bool) bool {
	if hi <= lo {
		return true
	}
	if hi-lo == 1 {
		sp.IncLeaf()
		return t.visit(t.pts[lo], min, max, sp, fn)
	}
	sp.IncNode()
	mid := (lo + hi) / 2
	axis := depth % t.dims
	c := t.pts[mid].coord(axis)
	if min[axis] <= c {
		if !t.search(lo, mid, depth+1, min, max, sp, fn) {
			return false
		}
	}
	if !t.visit(t.pts[mid], min, max, sp, fn) {
		return false
	}
	if max[axis] >= c {
		if !t.search(mid+1, hi, depth+1, min, max, sp, fn) {
			return false
		}
	}
	return true
}

func (t *Tree) visit(p Point, min, max [3]float64, sp *trace.Span, fn func(p Point) bool) bool {
	sp.AddEntries(1)
	for d := 0; d < t.dims; d++ {
		if p.coord(d) < min[d] || p.coord(d) > max[d] {
			return true
		}
	}
	return fn(p)
}

// SearchBox3 adapts Search to a geom.Box3 query.
func (t *Tree) SearchBox3(q geom.Box3, fn func(p Point) bool) bool {
	return t.SearchBox3Traced(q, nil, fn)
}

// SearchBox3Traced adapts SearchTraced to a geom.Box3 query.
func (t *Tree) SearchBox3Traced(q geom.Box3, sp *trace.Span, fn func(p Point) bool) bool {
	return t.SearchTraced(
		[3]float64{q.Min.X, q.Min.Y, q.Min.Z},
		[3]float64{q.Max.X, q.Max.Y, q.Max.Z}, sp, fn)
}

// Any reports whether some indexed point lies inside the box.
func (t *Tree) Any(min, max [3]float64) bool {
	return !t.Search(min, max, func(Point) bool { return false })
}

// MemoryBytes returns the index footprint: the point array plus the axis
// tags.
func (t *Tree) MemoryBytes() int64 {
	return int64(len(t.pts))*28 + int64(len(t.axis))
}

// CheckInvariants validates the k-d ordering; tests use it. It returns
// "" when the tree is well formed.
func (t *Tree) CheckInvariants() string {
	var check func(lo, hi, depth int) string
	check = func(lo, hi, depth int) string {
		if hi-lo <= 1 {
			return ""
		}
		mid := (lo + hi) / 2
		axis := depth % t.dims
		c := t.pts[mid].coord(axis)
		for i := lo; i < mid; i++ {
			if t.pts[i].coord(axis) > c {
				return "left subtree exceeds split"
			}
		}
		for i := mid + 1; i < hi; i++ {
			if t.pts[i].coord(axis) < c {
				return "right subtree below split"
			}
		}
		if msg := check(lo, mid, depth+1); msg != "" {
			return msg
		}
		return check(mid+1, hi, depth+1)
	}
	return check(0, len(t.pts), 0)
}

// Validate deep-checks the k-d ordering invariant and returns a
// descriptive error for the first violation, matching the Validate
// convention of the other index structures.
func (t *Tree) Validate() error {
	if msg := t.CheckInvariants(); msg != "" {
		return fmt.Errorf("kdtree: %s", msg)
	}
	return nil
}
