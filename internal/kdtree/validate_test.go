package kdtree

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{X: float64(i % 8), Y: float64(i / 8), ID: int32(i)}
	}
	tr := Build(pts, 2)
	if err := tr.Validate(); err != nil {
		t.Fatalf("freshly built tree rejected: %v", err)
	}

	// Swapping the extreme points breaks the median ordering at the
	// root split.
	tr.pts[0], tr.pts[len(tr.pts)-1] = tr.pts[len(tr.pts)-1], tr.pts[0]
	err := tr.Validate()
	if err == nil {
		t.Fatal("corrupted tree accepted")
	}
	if !strings.Contains(err.Error(), "split") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := Build(nil, 2).Validate(); err != nil {
		t.Fatal(err)
	}
}
