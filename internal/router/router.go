// Package router implements the rrrouter tier of sharded RangeReach
// serving: an HTTP front that fans each query out to the rrserve shard
// processes holding the venue partition (internal/shard) and
// OR-combines their answers.
//
// Because the shards partition the venue set while sharing the global
// vertex-id space, the router needs no vertex translation and the
// scatter-gather combine is exact: a query is positive iff some shard
// answers positively. That shape drives the whole design:
//
//   - Spatial pruning: shards whose venue bounds miss the query region
//     cannot answer positively and are never called.
//   - Early exit: the first positive shard answer settles the query;
//     the remaining in-flight shard calls are canceled.
//   - Partial failure: a positive from any live shard is exact even if
//     other shards are down. Only all-negative answers depend on every
//     shard; the Policy decides whether those fail (PolicyFail) or
//     degrade to a flagged, possibly-false negative (PolicyDegrade).
//
// Placement is by consistent hashing with bounded loads (see Ring);
// per-shard health is tracked passively with mark-down and half-open
// recovery (see health); slow shards are hedged with a second request
// after Config.Hedge.
//
// When the shards serve dynamic indexes, POST /v1/update routes each
// mutation to the owning shard(s) — graph ops broadcast to the
// replicated social graph, venue ops go to their placement owner with
// id-space-aligning placeholders elsewhere (see update.go) — and
// GET /v1/cluster reports each shard's snapshot generation plus the
// cluster-wide maximum.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Policy selects what an all-negative answer with failed shards
// becomes.
type Policy int

const (
	// PolicyFail answers 502 when a needed shard cannot be reached and
	// no live shard answered positively. Never returns a wrong answer.
	PolicyFail Policy = iota
	// PolicyDegrade treats unreachable shards as negative and flags the
	// response partial — availability over completeness.
	PolicyDegrade
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicyDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy resolves the textual policy names used by flags.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "fail":
		return PolicyFail, nil
	case "degrade":
		return PolicyDegrade, nil
	default:
		return 0, fmt.Errorf("router: unknown partial-failure policy %q (want fail or degrade)", name)
	}
}

// Config assembles a Router.
type Config struct {
	// Map is the cluster topology (required).
	Map *shard.Map
	// Backends are the rrserve base URLs shards are placed on via the
	// consistent-hash ring (required, at least one).
	Backends []string
	// VNodes is the ring's virtual-node count per backend (0 selects
	// DefaultVNodes).
	VNodes int
	// ShardTimeout bounds each shard call (default 2s).
	ShardTimeout time.Duration
	// Hedge launches a second identical shard request when the first
	// has not answered after this long; the first answer wins. Zero
	// disables hedging.
	Hedge time.Duration
	// Policy is the partial-failure policy (default PolicyFail).
	Policy Policy
	// MaxBatch caps the queries accepted per batch request (default
	// 8192).
	MaxBatch int
	// MaxBodyBytes caps request bodies; oversized bodies get 413
	// (default 8 MiB, negative disables).
	MaxBodyBytes int64
	// DownAfter marks a shard down after this many consecutive
	// failures (default 3).
	DownAfter int
	// DownCooldown is how long a marked-down shard is skipped before a
	// half-open trial (default 2s).
	DownCooldown time.Duration
	// Logger receives one structured record per request. Nil disables.
	Logger *slog.Logger
	// TraceSample enables ambient trace collection: every request
	// collects spans and a tail decision keeps all slow or errored
	// traces plus one in TraceSample healthy ones. Zero disables ambient
	// collection; requests carrying a client traceparent header are
	// always collected and kept regardless.
	TraceSample int
	// TraceSlow is the latency at which a trace is always retained
	// (default 100ms).
	TraceSlow time.Duration
	// TraceRing caps the retained-trace ring served by /v1/trace/{id}
	// (default 256).
	TraceRing int
	// Federate is the background interval for scraping shard /metrics
	// into the rr_cluster_* families. Zero scrapes on demand when
	// /v1/cluster is hit with a stale view.
	Federate time.Duration
	// Transport overrides the outbound HTTP transport (tests); nil
	// selects a pooled transport with per-backend connection reuse.
	Transport http.RoundTripper
}

// Router is the scatter-gather front. Create with New, expose via
// Handler, Close when done to release idle backend connections.
type Router struct {
	cfg       Config
	mux       *http.ServeMux
	client    *http.Client
	backendOf []string // shard id -> backend base URL
	// bounds is the per-shard venue-bounds view, copy-on-write: readers
	// atomically load the slice, the update path (under updateMu)
	// replaces it when a new or moved venue grows a shard's bounds.
	bounds   atomic.Pointer[[]geom.Rect]
	updateMu sync.Mutex
	health   []*health

	reg        *metrics.Registry
	mReqQuery  *metrics.Counter
	mReqBatch  *metrics.Counter
	mReqUpdate *metrics.Counter
	mUpdates   *metrics.Counter
	mReqErrs   *metrics.Counter
	mEarlyExit *metrics.Counter
	mHedges    *metrics.Counter
	mPruned    *metrics.Counter
	mInflight  *metrics.Gauge
	mLatency   *metrics.Histogram
	mShardReqs []*metrics.Counter
	mShardErrs []*metrics.Counter
	mShardLat  []*metrics.Histogram

	mTraces     *metrics.Counter
	mTracesKept *metrics.Counter
	ring        *trace.Ring
	sampler     *trace.Sampler

	fed     *federator
	fedStop chan struct{}
	fedDone chan struct{}

	reqID atomic.Uint64
}

// New builds a Router over the shard map and backend set.
func New(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, errors.New("router: Config.Map is required")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: Config.Backends must name at least one rrserve base URL")
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.TraceSlow <= 0 {
		cfg.TraceSlow = 100 * time.Millisecond
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 256
	}
	n := cfg.Map.NumShards()
	rt := &Router{
		cfg:       cfg,
		backendOf: Placement(n, cfg.Backends, cfg.VNodes),
		health:    make([]*health, n),
		reg:       metrics.NewRegistry(),
		ring:      trace.NewRing(cfg.TraceRing),
		sampler:   &trace.Sampler{N: cfg.TraceSample, Slow: cfg.TraceSlow},
	}
	bounds := make([]geom.Rect, n)
	for i, s := range cfg.Map.Shards {
		bounds[i] = s.BoundsRect()
		rt.health[i] = newHealth(cfg.DownAfter, cfg.DownCooldown, nil)
	}
	rt.bounds.Store(&bounds)
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        4 * n,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	rt.client = &http.Client{Transport: transport}

	rt.mReqQuery = rt.reg.Counter(`rr_router_requests_total{endpoint="query"}`, "Router HTTP requests by endpoint.")
	rt.mReqBatch = rt.reg.Counter(`rr_router_requests_total{endpoint="batch"}`, "Router HTTP requests by endpoint.")
	rt.mReqUpdate = rt.reg.Counter(`rr_router_requests_total{endpoint="update"}`, "Router HTTP requests by endpoint.")
	rt.mUpdates = rt.reg.Counter("rr_router_updates_total", "Cluster updates applied across the shard set.")
	rt.mReqErrs = rt.reg.Counter("rr_router_request_errors_total", "Router requests answered with a non-2xx status.")
	rt.mEarlyExit = rt.reg.Counter("rr_router_early_exits_total", "Scatter-gathers settled by a positive before every shard answered.")
	rt.mHedges = rt.reg.Counter("rr_router_hedged_requests_total", "Hedged second attempts launched against slow shards.")
	rt.mPruned = rt.reg.Counter("rr_router_pruned_shards_total", "Shard calls skipped because the shard's venue bounds miss the query region.")
	rt.mInflight = rt.reg.Gauge("rr_router_inflight_requests", "Router requests currently being served.")
	rt.mLatency = rt.reg.Histogram("rr_router_query_seconds", "End-to-end latency of router query and batch requests.", nil)
	rt.mShardReqs = make([]*metrics.Counter, n)
	rt.mShardErrs = make([]*metrics.Counter, n)
	rt.mShardLat = make([]*metrics.Histogram, n)
	for i := 0; i < n; i++ {
		rt.mShardReqs[i] = rt.reg.Counter(
			fmt.Sprintf(`rr_router_shard_requests_total{shard="%d"}`, i),
			"Shard calls attempted, by shard.")
		rt.mShardErrs[i] = rt.reg.Counter(
			fmt.Sprintf(`rr_router_shard_errors_total{shard="%d"}`, i),
			"Failed shard calls, by shard (cancellations excluded).")
		rt.mShardLat[i] = rt.reg.Histogram(
			fmt.Sprintf(`rr_router_shard_latency_seconds{shard="%d"}`, i),
			"Latency of successful shard calls, by shard.", nil)
		h := rt.health[i]
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_router_shard_down{shard="%d"}`, i),
			"1 while the shard is marked down, 0 otherwise.",
			func() float64 {
				if h.isDown() {
					return 1
				}
				return 0
			})
	}

	rt.mTraces = rt.reg.Counter("rr_router_traces_total", "Requests that collected a cluster trace.")
	rt.mTracesKept = rt.reg.Counter("rr_router_traces_kept_total", "Cluster traces retained by tail sampling.")
	rt.fed = newFederator(n)
	rt.registerClusterMetrics()

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/query", rt.instrument("query", rt.mReqQuery, rt.handleQuery))
	rt.mux.HandleFunc("POST /v1/batch", rt.instrument("batch", rt.mReqBatch, rt.handleBatch))
	rt.mux.HandleFunc("POST /v1/update", rt.instrument("update", rt.mReqUpdate, rt.handleUpdate))
	rt.mux.HandleFunc("GET /v1/trace/{id}", rt.handleTrace)
	rt.mux.HandleFunc("GET /v1/traces", rt.handleTraces)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	if cfg.Federate > 0 {
		rt.fedStop = make(chan struct{})
		rt.fedDone = make(chan struct{})
		go rt.federateLoop()
	}
	return rt, nil
}

// Handler returns the HTTP handler tree.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics exposes the registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// BackendFor returns the backend base URL shard id is placed on.
func (rt *Router) BackendFor(id int) string { return rt.backendOf[id] }

// Close stops the federation loop and releases idle backend
// connections.
func (rt *Router) Close() {
	if rt.fedStop != nil {
		close(rt.fedStop)
		<-rt.fedDone
		rt.fedStop = nil
	}
	if t, ok := rt.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// ---- wire types (mirroring internal/server) ----

type queryRequest struct {
	Vertex int        `json:"vertex"`
	Region [4]float64 `json:"region"`
}

type queryResponse struct {
	Reachable bool  `json:"reachable"`
	Micros    int64 `json:"micros"`
	// Shards counts the shard calls the scatter-gather attempted (after
	// pruning).
	Shards int `json:"shards"`
	// Partial marks a degraded negative: some shard was unreachable and
	// PolicyDegrade treated it as negative.
	Partial bool `json:"partial,omitempty"`
	// TraceID names the cluster trace this request collected, fetchable
	// from /v1/trace/{id} while it stays in the ring.
	TraceID string `json:"trace_id,omitempty"`
}

type batchRequest struct {
	Queries     []queryRequest `json:"queries"`
	Parallelism int            `json:"parallelism"`
}

type batchResponse struct {
	Results []bool `json:"results"`
	Micros  int64  `json:"micros"`
	Shards  int    `json:"shards"`
	Partial bool   `json:"partial,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// shardQueryReply is the subset of rrserve's /v1/query response the
// router consumes. Stats is the shard's own QueryStats, present only
// on traced requests; the router stitches it into the cluster trace
// without interpreting it.
type shardQueryReply struct {
	Reachable bool            `json:"reachable"`
	Stats     json.RawMessage `json:"stats"`
}

// shardBatchReply is the subset of rrserve's /v1/batch response the
// router consumes.
type shardBatchReply struct {
	Results []bool `json:"results"`
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	if status >= 400 {
		rt.mReqErrs.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	rt.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body under the MaxBodyBytes cap,
// reporting (status, error) on failure.
func (rt *Router) decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := r.Body
	if rt.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request: %w", err)
	}
	return 0, nil
}

// statusWriter captures the response status for the trace and the
// request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps a handler with counters, the in-flight gauge, the
// latency histogram, the trace lifecycle and the request log. With
// tracing off and no logger the wrapper stays on the untraced fast
// path: the two atomics plus one histogram observe, and a single
// traceparent header lookup.
func (rt *Router) instrument(endpoint string, reqs *metrics.Counter, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		rt.mInflight.Inc()
		start := time.Now()
		tb, r := rt.startTrace(r, endpoint, start)
		var sw *statusWriter
		if tb != nil || rt.cfg.Logger != nil {
			sw = &statusWriter{ResponseWriter: w}
			w = sw
		}
		h(w, r)
		elapsed := time.Since(start)
		rt.mLatency.Observe(elapsed.Seconds())
		rt.mInflight.Dec()
		if tb != nil && !tb.isAsync() {
			rt.storeTrace(tb, sw.status(), elapsed)
		}
		if rt.cfg.Logger != nil {
			attrs := []slog.Attr{
				slog.Uint64("req", rt.reqID.Add(1)),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status()),
				slog.Duration("elapsed", elapsed),
			}
			if tb != nil {
				attrs = append(attrs, slog.String("trace_id", tb.traceID()))
			}
			rt.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
		}
	}
}

// ---- shard calls ----

var errShardDown = errors.New("shard marked down")

// callShard POSTs body to one shard and returns the response bytes.
// The call carries the per-shard timeout; when hedging is configured a
// second identical attempt launches after cfg.Hedge and the first
// answer wins. Cancellation of parent (early exit or client
// disconnect) is not held against the shard's health.
func (rt *Router) callShard(parent context.Context, sid int, path string, body []byte) ([]byte, error) {
	h := rt.health[sid]
	if !h.allow() {
		return nil, errShardDown
	}
	rt.mShardReqs[sid].Inc()
	ctx, cancel := context.WithTimeout(parent, rt.cfg.ShardTimeout)
	defer cancel()

	start := time.Now()
	data, err := rt.attemptHedged(ctx, sid, path, body)
	if err != nil {
		if parent.Err() != nil {
			// The scatter-gather no longer needs this answer; neither an
			// error nor a health signal — but a half-open probe must be
			// released or allow() refuses the shard forever.
			h.abort()
			return nil, parent.Err()
		}
		h.report(false)
		rt.mShardErrs[sid].Inc()
		return nil, err
	}
	h.report(true)
	rt.mShardLat[sid].Observe(time.Since(start).Seconds())
	return data, nil
}

// attemptHedged runs one attempt, or two racing attempts when the
// first is slower than the hedge delay.
func (rt *Router) attemptHedged(ctx context.Context, sid int, path string, body []byte) ([]byte, error) {
	if rt.cfg.Hedge <= 0 {
		return rt.attempt(ctx, sid, path, body)
	}
	type outcome struct {
		data []byte
		err  error
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	ch := make(chan outcome, 2)
	launch := func() {
		data, err := rt.attempt(actx, sid, path, body)
		ch <- outcome{data, err}
	}
	go launch()
	hedge := time.NewTimer(rt.cfg.Hedge)
	defer hedge.Stop()
	launched, outstanding := 1, 1
	var firstErr error
	for {
		select {
		case <-hedge.C:
			if launched == 1 {
				launched, outstanding = 2, outstanding+1
				rt.mHedges.Inc()
				traceFrom(ctx).event("hedge", trace.TierRouter, sid, map[string]string{"cause": "slow"})
				go launch()
			}
		case out := <-ch:
			if out.err == nil {
				acancel() // the loser attempt, if any, is moot
				return out.data, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			outstanding--
			if launched == 1 {
				// The first attempt failed before the hedge fired (e.g.
				// connection refused): spend the hedge budget on an
				// immediate retry instead of waiting for the timer.
				hedge.Stop()
				launched, outstanding = 2, outstanding+1
				rt.mHedges.Inc()
				traceFrom(ctx).event("hedge", trace.TierRouter, sid, map[string]string{"cause": "fast-fail"})
				go launch()
				continue
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt is one HTTP POST to a shard.
func (rt *Router) attempt(ctx context.Context, sid int, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.backendOf[sid]+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tb := traceFrom(ctx); tb != nil {
		// Same trace id, fresh span id per hop: the shard logs and
		// traces under the cluster-wide id.
		req.Header.Set(trace.TraceparentHeader, trace.FormatTraceparent(tb.traceID(), trace.NewSpanID()))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %d: %s: %s", sid, resp.Status, firstLine(data))
	}
	return data, nil
}

// parsePositiveInt parses a strictly positive integer query parameter.
func parsePositiveInt(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("not positive: %d", v)
	}
	return v, nil
}

// firstLine trims an error body for log-friendly messages.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// boundsView returns the current per-shard venue bounds. The slice is
// immutable — the update path replaces, never mutates, it.
func (rt *Router) boundsView() []geom.Rect { return *rt.bounds.Load() }

// relevantShards returns the shard ids whose venue bounds intersect the
// query region, counting the pruned remainder.
func (rt *Router) relevantShards(region geom.Rect) []int {
	bounds := rt.boundsView()
	out := make([]int, 0, len(bounds))
	for sid, b := range bounds {
		if b.Intersects(region) {
			out = append(out, sid)
		}
	}
	rt.mPruned.Add(int64(len(bounds) - len(out)))
	return out
}

func regionRect(r [4]float64) geom.Rect {
	return geom.NewRect(r[0], r[1], r[2], r[3])
}

// ---- handlers ----

// placementSpan records the pruning decision on a traced request.
func (rt *Router) placementSpan(tb *traceBuilder, pstart time.Time, kept int) {
	tb.span("placement", trace.TierRouter, trace.NoShard, pstart, "", map[string]string{
		"shards": strconv.Itoa(kept),
		"pruned": strconv.Itoa(len(rt.backendOf) - kept),
	}, nil)
}

// fanoutAttrs labels the fan-out span with its outcome.
func fanoutAttrs(shards int, earlyExit bool, failed []int) map[string]string {
	attrs := map[string]string{
		"shards":     strconv.Itoa(shards),
		"early_exit": strconv.FormatBool(earlyExit),
	}
	if len(failed) > 0 {
		attrs["failed"] = fmt.Sprint(failed)
	}
	return attrs
}

// shardErrString condenses a shard-call error for a span. Cancellation
// of the scatter-gather is the one non-failure: the answer was simply
// no longer needed.
func shardErrString(err error) string {
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	return err.Error()
}

// finishAsync hands trace completion to a goroutine that waits for the
// canceled stragglers to record their spans. The trace keeps the
// latency the client saw, not the straggler drain time.
func (rt *Router) finishAsync(tb *traceBuilder, wg *sync.WaitGroup, status int) {
	if tb == nil {
		return
	}
	tb.beginAsync()
	elapsed := time.Since(tb.start)
	go func() {
		wg.Wait()
		rt.storeTrace(tb, status, elapsed)
	}()
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	tb := traceFrom(r.Context())
	var req queryRequest
	if status, err := rt.decodeBody(w, r, &req); err != nil {
		rt.writeError(w, status, "%v", err)
		return
	}
	if req.Vertex < 0 || req.Vertex >= rt.cfg.Map.Vertices {
		rt.writeError(w, http.StatusBadRequest, "vertex %d out of range [0,%d)", req.Vertex, rt.cfg.Map.Vertices)
		return
	}
	start := time.Now()
	region := regionRect(req.Region)
	shards := rt.relevantShards(region)
	rt.placementSpan(tb, start, len(shards))
	if len(shards) == 0 {
		rt.writeJSON(w, http.StatusOK, queryResponse{
			Reachable: false, Micros: time.Since(start).Microseconds(),
			TraceID: tb.traceID(),
		})
		return
	}
	// Re-encode the normalized query once; every shard gets identical
	// bytes.
	body, err := json.Marshal(queryRequest{Vertex: req.Vertex, Region: req.Region})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding shard request: %v", err)
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	type result struct {
		sid       int
		reachable bool
		err       error
	}
	ch := make(chan result, len(shards))
	fstart := time.Now()
	var wg sync.WaitGroup
	for _, sid := range shards {
		sid := sid
		wg.Add(1)
		go func() {
			defer wg.Done()
			cstart := time.Now()
			data, err := rt.callShard(ctx, sid, "/v1/query", body)
			if err != nil {
				tb.span("shard_call", trace.TierShard, sid, cstart, shardErrString(err),
					map[string]string{"backend": rt.backendOf[sid]}, nil)
				ch <- result{sid: sid, err: err}
				return
			}
			var reply shardQueryReply
			if err := json.Unmarshal(data, &reply); err != nil {
				tb.span("shard_call", trace.TierShard, sid, cstart, "bad reply",
					map[string]string{"backend": rt.backendOf[sid]}, nil)
				ch <- result{sid: sid, err: fmt.Errorf("shard %d: bad reply: %w", sid, err)}
				return
			}
			tb.span("shard_call", trace.TierShard, sid, cstart, "", map[string]string{
				"backend":   rt.backendOf[sid],
				"reachable": strconv.FormatBool(reply.Reachable),
			}, reply.Stats)
			ch <- result{sid: sid, reachable: reply.Reachable}
		}()
	}
	var failed []int
	for i := 0; i < len(shards); i++ {
		res := <-ch
		if res.err != nil {
			failed = append(failed, res.sid)
			continue
		}
		if res.reachable {
			// First positive settles the query exactly; cancel the rest.
			earlyExit := i < len(shards)-1
			if earlyExit {
				rt.mEarlyExit.Inc()
			}
			cancel()
			tb.span("fanout", trace.TierRouter, trace.NoShard, fstart, "",
				fanoutAttrs(len(shards), earlyExit, failed), nil)
			rt.writeJSON(w, http.StatusOK, queryResponse{
				Reachable: true, Shards: len(shards),
				Micros:  time.Since(start).Microseconds(),
				TraceID: tb.traceID(),
			})
			if earlyExit {
				rt.finishAsync(tb, &wg, http.StatusOK)
			}
			return
		}
	}
	tb.span("fanout", trace.TierRouter, trace.NoShard, fstart, "",
		fanoutAttrs(len(shards), false, failed), nil)
	if len(failed) > 0 && rt.cfg.Policy == PolicyFail {
		rt.writeError(w, http.StatusBadGateway, "shards %v unavailable and no live shard answered positively", failed)
		return
	}
	rt.writeJSON(w, http.StatusOK, queryResponse{
		Reachable: false, Shards: len(shards), Partial: len(failed) > 0,
		Micros:  time.Since(start).Microseconds(),
		TraceID: tb.traceID(),
	})
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if status, err := rt.decodeBody(w, r, &req); err != nil {
		rt.writeError(w, status, "%v", err)
		return
	}
	if len(req.Queries) == 0 {
		rt.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > rt.cfg.MaxBatch {
		rt.writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), rt.cfg.MaxBatch)
		return
	}
	for i, q := range req.Queries {
		if q.Vertex < 0 || q.Vertex >= rt.cfg.Map.Vertices {
			rt.writeError(w, http.StatusBadRequest, "query %d: vertex %d out of range [0,%d)", i, q.Vertex, rt.cfg.Map.Vertices)
			return
		}
	}
	tb := traceFrom(r.Context())
	start := time.Now()
	// Per-shard subsets: each shard sees only the queries whose region
	// intersects its venue bounds; a query intersecting no shard stays
	// negative without any network call.
	bounds := rt.boundsView()
	subsets := make([][]int, len(bounds))
	regions := make([]geom.Rect, len(req.Queries))
	for i, q := range req.Queries {
		regions[i] = regionRect(q.Region)
	}
	active := 0
	for sid, b := range bounds {
		for i := range req.Queries {
			if b.Intersects(regions[i]) {
				subsets[sid] = append(subsets[sid], i)
			}
		}
		if len(subsets[sid]) > 0 {
			active++
		}
	}
	rt.mPruned.Add(int64(len(bounds) - active))
	rt.placementSpan(tb, start, active)
	results := make([]bool, len(req.Queries))
	if active == 0 {
		rt.writeJSON(w, http.StatusOK, batchResponse{
			Results: results, Micros: time.Since(start).Microseconds(),
			TraceID: tb.traceID(),
		})
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	type result struct {
		sid     int
		subset  []int
		answers []bool
		err     error
	}
	ch := make(chan result, active)
	fstart := time.Now()
	var wg sync.WaitGroup
	for sid, subset := range subsets {
		if len(subset) == 0 {
			continue
		}
		sid, subset := sid, subset
		wg.Add(1)
		go func() {
			defer wg.Done()
			cstart := time.Now()
			attrs := map[string]string{
				"backend": rt.backendOf[sid],
				"queries": strconv.Itoa(len(subset)),
			}
			sub := batchRequest{Queries: make([]queryRequest, len(subset)), Parallelism: req.Parallelism}
			for j, i := range subset {
				sub.Queries[j] = req.Queries[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				tb.span("shard_call", trace.TierShard, sid, cstart, err.Error(), attrs, nil)
				ch <- result{sid: sid, err: err}
				return
			}
			data, err := rt.callShard(ctx, sid, "/v1/batch", body)
			if err != nil {
				tb.span("shard_call", trace.TierShard, sid, cstart, shardErrString(err), attrs, nil)
				ch <- result{sid: sid, err: err}
				return
			}
			var reply shardBatchReply
			if err := json.Unmarshal(data, &reply); err != nil {
				tb.span("shard_call", trace.TierShard, sid, cstart, "bad reply", attrs, nil)
				ch <- result{sid: sid, err: fmt.Errorf("shard %d: bad reply: %w", sid, err)}
				return
			}
			if len(reply.Results) != len(subset) {
				tb.span("shard_call", trace.TierShard, sid, cstart, "length mismatch", attrs, nil)
				ch <- result{sid: sid, err: fmt.Errorf("shard %d: %d results for %d queries", sid, len(reply.Results), len(subset))}
				return
			}
			tb.span("shard_call", trace.TierShard, sid, cstart, "", attrs, nil)
			ch <- result{sid: sid, subset: subset, answers: reply.Results}
		}()
	}
	positives := 0
	var failed []int
	for done := 0; done < active; done++ {
		res := <-ch
		if res.err != nil {
			failed = append(failed, res.sid)
			continue
		}
		for j, i := range res.subset {
			if res.answers[j] && !results[i] {
				results[i] = true
				positives++
			}
		}
		if positives == len(req.Queries) && done < active-1 {
			// Every query already positive: the outstanding shards
			// cannot change anything.
			rt.mEarlyExit.Inc()
			cancel()
			tb.span("fanout", trace.TierRouter, trace.NoShard, fstart, "",
				fanoutAttrs(active, true, failed), nil)
			rt.writeJSON(w, http.StatusOK, batchResponse{
				Results: results, Shards: active,
				Micros:  time.Since(start).Microseconds(),
				TraceID: tb.traceID(),
			})
			rt.finishAsync(tb, &wg, http.StatusOK)
			return
		}
	}
	tb.span("fanout", trace.TierRouter, trace.NoShard, fstart, "",
		fanoutAttrs(active, false, failed), nil)
	// A failed shard only makes the answer ambiguous when one of its
	// queries is still negative; positives from live shards are exact
	// regardless of what is down.
	ambiguous := false
	for _, sid := range failed {
		for _, i := range subsets[sid] {
			if !results[i] {
				ambiguous = true
				break
			}
		}
		if ambiguous {
			break
		}
	}
	if ambiguous && rt.cfg.Policy == PolicyFail {
		rt.writeError(w, http.StatusBadGateway, "shards %v unavailable and some of their queries have no positive from a live shard", failed)
		return
	}
	rt.writeJSON(w, http.StatusOK, batchResponse{
		Results: results, Shards: active, Partial: ambiguous,
		Micros:  time.Since(start).Microseconds(),
		TraceID: tb.traceID(),
	})
}

// healthzResponse reports the router's liveness and cluster view.
type healthzResponse struct {
	Status   string     `json:"status"`
	Shards   int        `json:"shards"`
	Backends int        `json:"backends"`
	Vertices int        `json:"vertices"`
	Space    [4]float64 `json:"space"`
	Strategy string     `json:"strategy"`
	Down     []int      `json:"down,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:   "ok",
		Shards:   rt.cfg.Map.NumShards(),
		Backends: len(rt.cfg.Backends),
		Vertices: rt.cfg.Map.Vertices,
		Space:    rt.cfg.Map.Space,
		Strategy: rt.cfg.Map.Strategy,
	}
	for sid, h := range rt.health {
		if h.isDown() {
			resp.Down = append(resp.Down, sid)
		}
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WritePrometheus(w)
}
