package router

import (
	"fmt"
	"testing"
)

func TestPlacementCoversEveryShard(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1"}
	p := Placement(9, backends, 0)
	if len(p) != 9 {
		t.Fatalf("placement has %d entries, want 9", len(p))
	}
	load := map[string]int{}
	for shard, b := range p {
		found := false
		for _, known := range backends {
			if b == known {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d placed on unknown backend %q", shard, b)
		}
		load[b]++
	}
	// Bounded loads: 9 shards over 3 backends = exactly 3 each.
	for b, n := range load {
		if n != 3 {
			t.Fatalf("backend %s got %d shards, want 3 (load %v)", b, n, load)
		}
	}
}

func TestPlacementPerfectMatchingAtEqualCounts(t *testing.T) {
	// With as many backends as shards the load bound is 1: every
	// backend serves exactly one shard, which is what lets one rrserve
	// process hold one shard index.
	for n := 1; n <= 8; n++ {
		backends := make([]string, n)
		for i := range backends {
			backends[i] = fmt.Sprintf("http://b%d:80", i)
		}
		p := Placement(n, backends, 0)
		seen := map[string]bool{}
		for shard, b := range p {
			if seen[b] {
				t.Fatalf("n=%d: backend %s serves two shards (%v)", n, b, p)
			}
			seen[b] = true
			_ = shard
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1"}
	p1 := Placement(6, backends, 32)
	p2 := Placement(6, backends, 32)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("placement not deterministic at shard %d: %q vs %q", i, p1[i], p2[i])
		}
	}
}

func TestPlacementStability(t *testing.T) {
	// Consistent hashing: dropping one backend of four must not move
	// shards between the surviving backends more than the load bound
	// forces. Measure how many shards stay put; re-sharding from
	// scratch would keep ~1/4 on average, the ring should keep most of
	// the survivors' shards.
	backends := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	const shards = 32
	before := Placement(shards, backends, 0)
	after := Placement(shards, backends[:3], 0)
	stayed := 0
	for i := range before {
		if before[i] == "http://d:1" {
			continue // had to move
		}
		if before[i] == after[i] {
			stayed++
		}
	}
	survivors := 0
	for i := range before {
		if before[i] != "http://d:1" {
			survivors++
		}
	}
	// The bounded-load cap rises from 8 to 11 after the removal, so a
	// few survivors may shift; requiring half to stay put separates a
	// consistent ring from rehash-everything while staying robust to
	// hash luck.
	if stayed < survivors/2 {
		t.Fatalf("only %d of %d surviving shards stayed put; placement is not consistent", stayed, survivors)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Place(3, 0); got != nil {
		t.Fatalf("empty ring placed shards: %v", got)
	}
}
