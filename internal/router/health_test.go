package router

import (
	"testing"
	"time"
)

// fakeClock is an injectable clock for health tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func mustAllow(t *testing.T, h *health, want bool) {
	t.Helper()
	if got := h.allow(); got != want {
		t.Fatalf("allow() = %v, want %v", got, want)
	}
}

func TestHealthMarkDownAndHalfOpen(t *testing.T) {
	clk := newFakeClock()
	h := newHealth(2, time.Second, clk.now)
	mustAllow(t, h, true)
	h.report(false)
	mustAllow(t, h, true)
	h.report(false) // crosses DownAfter
	if !h.isDown() {
		t.Fatal("not down after threshold")
	}
	mustAllow(t, h, false)
	clk.advance(1100 * time.Millisecond)
	mustAllow(t, h, true)  // half-open trial
	mustAllow(t, h, false) // only one probe at a time
	h.report(true)
	if h.isDown() {
		t.Fatal("still down after successful trial")
	}
	mustAllow(t, h, true)
}

// TestHealthAbortReleasesProbe is the regression test for the probe
// leak: a half-open trial whose call is canceled (early exit, client
// disconnect) must release the probe slot, or allow() refuses the
// shard forever and it can never recover.
func TestHealthAbortReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	h := newHealth(1, time.Second, clk.now)
	h.report(false)
	if !h.isDown() {
		t.Fatal("not down")
	}
	clk.advance(1100 * time.Millisecond)
	mustAllow(t, h, true) // probe granted
	h.abort()             // canceled before any verdict
	if !h.isDown() {
		t.Fatal("abort must not close the breaker")
	}
	mustAllow(t, h, true) // a fresh trial must be granted
	h.report(true)
	if h.isDown() {
		t.Fatal("still down after successful retrial")
	}
}
