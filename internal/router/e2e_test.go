package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	rangereach "repro"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
)

// e2eCluster is a live sharded deployment inside one process: real
// indexes behind real internal/server handlers, fronted by a Router,
// next to the unsharded oracle index built from the same network.
type e2eCluster struct {
	router   *Router
	handler  http.Handler
	oracle   *rangereach.Index
	vertices int
	space    rangereach.Rect
}

// newE2ECluster partitions net into nShards, builds one index per shard
// network (round-tripped through the on-disk format, exactly as rrgen
// and rrserve would), places shards on backends via the ring, and
// returns the cluster.
func newE2ECluster(t *testing.T, net *dataset.Network, nShards int, strategy shard.Strategy, method rangereach.Method) *e2eCluster {
	t.Helper()
	dir := t.TempDir()

	fullPath := filepath.Join(dir, "full.gsn")
	if err := dataset.SaveFile(fullPath, net); err != nil {
		t.Fatal(err)
	}
	full, err := rangereach.LoadNetwork(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := full.Build(method)
	if err != nil {
		t.Fatal(err)
	}

	asn, err := shard.Partition(net, nShards, strategy)
	if err != nil {
		t.Fatal(err)
	}
	m := asn.Map(net.Name, net.NumVertices(), net.Space())

	// Backends first (their URLs seed the ring), shard handlers second,
	// installed wherever the ring placed each shard.
	swaps := make([]*swapHandler, nShards)
	urls := make([]string, nShards)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt, err := New(Config{Map: m, Backends: urls, Policy: PolicyFail})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	byURL := make(map[string]*swapHandler, nShards)
	for i, u := range urls {
		byURL[u] = swaps[i]
	}
	for sid := 0; sid < nShards; sid++ {
		snet, err := asn.ShardNetwork(net, sid)
		if err != nil {
			t.Fatal(err)
		}
		spath := filepath.Join(dir, fmt.Sprintf("shard%d.gsn", sid))
		if err := dataset.SaveFile(spath, snet); err != nil {
			t.Fatal(err)
		}
		loaded, err := rangereach.LoadNetwork(spath)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := loaded.Build(method)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		byURL[rt.BackendFor(sid)].set(srv.Handler())
	}
	return &e2eCluster{
		router:   rt,
		handler:  rt.Handler(),
		oracle:   oracle,
		vertices: net.NumVertices(),
		space:    full.Space(),
	}
}

// queries draws a randomized suite: vertices uniform over the id space,
// regions from tiny single-shard rectangles up to 60% of the space
// (guaranteed to span multiple spatial shards), plus the whole space.
func (c *e2eCluster) queries(rng *rand.Rand, n int) []queryRequest {
	extents := []float64{0.01, 0.05, 0.2, 0.6}
	w := c.space.MaxX - c.space.MinX
	h := c.space.MaxY - c.space.MinY
	out := make([]queryRequest, 0, n+1)
	for i := 0; i < n; i++ {
		frac := extents[i%len(extents)]
		rw, rh := w*frac, h*frac
		x := c.space.MinX + rng.Float64()*(w-rw)
		y := c.space.MinY + rng.Float64()*(h-rh)
		out = append(out, queryRequest{
			Vertex: rng.Intn(c.vertices),
			Region: [4]float64{x, y, x + rw, y + rh},
		})
	}
	out = append(out, queryRequest{
		Vertex: rng.Intn(c.vertices),
		Region: [4]float64{c.space.MinX, c.space.MinY, c.space.MaxX, c.space.MaxY},
	})
	return out
}

func e2eNetwork() *dataset.Network {
	return dataset.Generate(dataset.GenConfig{
		Name:        "e2e",
		Users:       500,
		Venues:      250,
		AvgFriends:  6,
		AvgCheckins: 3,
		Regime:      dataset.Fragmented,
		Clusters:    20,
		Seed:        11,
	})
}

// TestShardedClusterMatchesUnsharded is the end-to-end acceptance test:
// a >=3-shard cluster served through the router answers every query —
// single and batch, including regions spanning multiple shards —
// identically to one unsharded index.
func TestShardedClusterMatchesUnsharded(t *testing.T) {
	net := e2eNetwork()
	for _, strategy := range []shard.Strategy{shard.Spatial, shard.Social} {
		t.Run(strategy.String(), func(t *testing.T) {
			c := newE2ECluster(t, net, 3, strategy, rangereach.ThreeDReach)
			rng := rand.New(rand.NewSource(99))
			queries := c.queries(rng, 150)

			positives := 0
			for i, q := range queries {
				rec, resp := postQuery(t, c.handler, q.Vertex, q.Region)
				if rec.Code != http.StatusOK {
					t.Fatalf("query %d: status %d: %s", i, rec.Code, rec.Body.String())
				}
				want := c.oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
				if resp.Reachable != want {
					t.Fatalf("query %d (vertex %d region %v): sharded=%v unsharded=%v",
						i, q.Vertex, q.Region, resp.Reachable, want)
				}
				if want {
					positives++
				}
			}
			if positives == 0 || positives == len(queries) {
				t.Fatalf("degenerate suite: %d/%d positive — the comparison proves nothing", positives, len(queries))
			}

			rec, batch := postBatch(t, c.handler, queries)
			if rec.Code != http.StatusOK {
				t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
			}
			if batch.Partial {
				t.Fatal("batch flagged partial on a healthy cluster")
			}
			for i, q := range queries {
				want := c.oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
				if batch.Results[i] != want {
					t.Fatalf("batch query %d: sharded=%v unsharded=%v", i, batch.Results[i], want)
				}
			}
		})
	}
}

// TestShardedClusterFiveShards stresses the placement and merge paths
// at a shard count that does not divide the backend count evenly.
func TestShardedClusterFiveShards(t *testing.T) {
	net := e2eNetwork()
	c := newE2ECluster(t, net, 5, shard.Spatial, rangereach.SocReach)
	rng := rand.New(rand.NewSource(7))
	queries := c.queries(rng, 60)
	rec, batch := postBatch(t, c.handler, queries)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	for i, q := range queries {
		want := c.oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
		if batch.Results[i] != want {
			t.Fatalf("query %d: sharded=%v unsharded=%v", i, batch.Results[i], want)
		}
	}
}

// TestShardedExplainParity spot-checks that shard servers accept the
// exact wire bytes the router sends (contract drift between the two
// packages' request structs would surface here).
func TestShardedWireContract(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(queryRequest{Vertex: 3, Region: [4]float64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	want := `{"vertex":3,"region":[1,2,3,4]}`
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != want {
		t.Fatalf("query wire format drifted: %s", got)
	}
}

// newDynamicE2ECluster is newE2ECluster with every shard serving a
// dynamic index (with publish-time validation) and a dynamic unsharded
// oracle, so updates can stream through the router.
func newDynamicE2ECluster(t *testing.T, net *dataset.Network, nShards int, strategy shard.Strategy) (*e2eCluster, *rangereach.DynamicIndex) {
	t.Helper()
	dir := t.TempDir()

	fullPath := filepath.Join(dir, "full.gsn")
	if err := dataset.SaveFile(fullPath, net); err != nil {
		t.Fatal(err)
	}
	full, err := rangereach.LoadNetwork(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	oracle := full.BuildDynamic()

	asn, err := shard.Partition(net, nShards, strategy)
	if err != nil {
		t.Fatal(err)
	}
	m := asn.Map(net.Name, net.NumVertices(), net.Space())

	swaps := make([]*swapHandler, nShards)
	urls := make([]string, nShards)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt, err := New(Config{Map: m, Backends: urls, Policy: PolicyFail})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	byURL := make(map[string]*swapHandler, nShards)
	for i, u := range urls {
		byURL[u] = swaps[i]
	}
	for sid := 0; sid < nShards; sid++ {
		snet, err := asn.ShardNetwork(net, sid)
		if err != nil {
			t.Fatal(err)
		}
		spath := filepath.Join(dir, fmt.Sprintf("shard%d.gsn", sid))
		if err := dataset.SaveFile(spath, snet); err != nil {
			t.Fatal(err)
		}
		loaded, err := rangereach.LoadNetwork(spath)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Dynamic: loaded.BuildDynamic(), CheckPublish: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		byURL[rt.BackendFor(sid)].set(srv.Handler())
	}
	return &e2eCluster{
		router:   rt,
		handler:  rt.Handler(),
		vertices: net.NumVertices(),
		space:    full.Space(),
	}, oracle
}

func postRouterUpdate(t *testing.T, h http.Handler, ureq updateRequest) (int, updateResponse) {
	t.Helper()
	body, err := json.Marshal(ureq)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/update", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp updateResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	return rec.Code, resp
}

// TestShardedDynamicUpdates streams a randomized update sequence —
// users, venues, edges in and out, venue moves — through the router's
// /v1/update and asserts the cluster keeps answering queries exactly
// like an unsharded dynamic oracle receiving the same sequence, while
// the cluster-wide generation advances monotonically.
func TestShardedDynamicUpdates(t *testing.T) {
	net := e2eNetwork()
	c, oracle := newDynamicE2ECluster(t, net, 3, shard.Spatial)
	rng := rand.New(rand.NewSource(13))

	nVertices := net.NumVertices()
	var venues []int
	for v := 0; v < nVertices; v++ {
		if net.Spatial[v] {
			venues = append(venues, v)
		}
	}
	edgeSet := make(map[[2]int]bool)
	var edges [][2]int
	for u := 0; u < nVertices; u++ {
		for _, w := range net.Graph.Out(u) {
			e := [2]int{u, int(w)}
			edgeSet[e] = true
			edges = append(edges, e)
		}
	}

	space := c.space
	var lastGen uint64
	for step := 0; step < 120; step++ {
		switch k := rng.Intn(10); {
		case k < 2: // add user
			code, resp := postRouterUpdate(t, c.handler, updateRequest{Op: "add_user"})
			if code != http.StatusOK {
				t.Fatalf("step %d: add_user status %d", step, code)
			}
			if id := oracle.AddUser(); resp.ID == nil || *resp.ID != id {
				t.Fatalf("step %d: add_user id %v, oracle %d", step, resp.ID, id)
			}
			nVertices++
		case k < 4: // add venue
			x := space.MinX + rng.Float64()*(space.MaxX-space.MinX)
			y := space.MinY + rng.Float64()*(space.MaxY-space.MinY)
			code, resp := postRouterUpdate(t, c.handler, updateRequest{Op: "add_venue", X: x, Y: y})
			if code != http.StatusOK {
				t.Fatalf("step %d: add_venue status %d", step, code)
			}
			if id := oracle.AddVenue(x, y); resp.ID == nil || *resp.ID != id {
				t.Fatalf("step %d: add_venue id %v, oracle %d", step, resp.ID, id)
			}
			if resp.Owner == nil {
				t.Fatalf("step %d: add_venue returned no owner", step)
			}
			venues = append(venues, nVertices)
			nVertices++
		case k < 6 && len(edges) > 0: // delete a known edge
			i := rng.Intn(len(edges))
			e := edges[i]
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			delete(edgeSet, e)
			code, _ := postRouterUpdate(t, c.handler, updateRequest{Op: "del_edge", From: e[0], To: e[1]})
			if code != http.StatusOK {
				t.Fatalf("step %d: del_edge(%d,%d) status %d", step, e[0], e[1], code)
			}
			if err := oracle.DeleteEdge(e[0], e[1]); err != nil {
				t.Fatalf("step %d: oracle del_edge: %v", step, err)
			}
		case k < 7 && len(venues) > 0: // move a venue
			v := venues[rng.Intn(len(venues))]
			x := space.MinX + rng.Float64()*(space.MaxX-space.MinX)
			y := space.MinY + rng.Float64()*(space.MaxY-space.MinY)
			code, resp := postRouterUpdate(t, c.handler, updateRequest{Op: "move_venue", Vertex: v, X: x, Y: y})
			if code != http.StatusOK {
				t.Fatalf("step %d: move_venue(%d) status %d", step, v, code)
			}
			if resp.Owner == nil {
				t.Fatalf("step %d: move_venue returned no owner", step)
			}
			if err := oracle.MoveVenue(v, x, y); err != nil {
				t.Fatalf("step %d: oracle move_venue: %v", step, err)
			}
		default: // add edge (cycle-closing edges merge cluster-wide)
			u, v := rng.Intn(nVertices), rng.Intn(nVertices)
			code, resp := postRouterUpdate(t, c.handler, updateRequest{Op: "add_edge", From: u, To: v})
			if code != http.StatusOK {
				t.Fatalf("step %d: add_edge(%d,%d) status %d", step, u, v, code)
			}
			if err := oracle.AddEdge(u, v); err != nil {
				t.Fatalf("step %d: oracle add_edge: %v", step, err)
			}
			if u != v && !edgeSet[[2]int{u, v}] {
				edgeSet[[2]int{u, v}] = true
				edges = append(edges, [2]int{u, v})
			}
			if resp.Gen < lastGen {
				t.Fatalf("step %d: generation went backwards: %d < %d", step, resp.Gen, lastGen)
			}
			lastGen = resp.Gen
		}

		if step%20 == 19 {
			for i, q := range c.queries(rng, 25) {
				rec, resp := postQuery(t, c.handler, q.Vertex, q.Region)
				if rec.Code != http.StatusOK {
					t.Fatalf("step %d query %d: status %d: %s", step, i, rec.Code, rec.Body.String())
				}
				want := oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
				if resp.Reachable != want {
					t.Fatalf("step %d query %d (vertex %d region %v): sharded=%v oracle=%v",
						step, i, q.Vertex, q.Region, resp.Reachable, want)
				}
			}
		}
	}
	if lastGen == 0 {
		t.Fatal("no add_edge advanced the generation — degenerate op mix")
	}

	// The cluster view reports the generation high-water mark.
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster", nil)
	rec := httptest.NewRecorder()
	c.handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster status %d: %s", rec.Code, rec.Body.String())
	}
	var cresp clusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cresp); err != nil {
		t.Fatal(err)
	}
	if cresp.MaxGeneration < lastGen {
		t.Fatalf("cluster max_generation %d below last observed update gen %d", cresp.MaxGeneration, lastGen)
	}
	for _, s := range cresp.Shards {
		if s.Gen == 0 {
			t.Errorf("shard %d reports generation 0 after %d updates", s.ID, 120)
		}
	}
}
