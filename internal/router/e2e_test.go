package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	rangereach "repro"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
)

// e2eCluster is a live sharded deployment inside one process: real
// indexes behind real internal/server handlers, fronted by a Router,
// next to the unsharded oracle index built from the same network.
type e2eCluster struct {
	router   *Router
	handler  http.Handler
	oracle   *rangereach.Index
	vertices int
	space    rangereach.Rect
}

// newE2ECluster partitions net into nShards, builds one index per shard
// network (round-tripped through the on-disk format, exactly as rrgen
// and rrserve would), places shards on backends via the ring, and
// returns the cluster.
func newE2ECluster(t *testing.T, net *dataset.Network, nShards int, strategy shard.Strategy, method rangereach.Method) *e2eCluster {
	t.Helper()
	dir := t.TempDir()

	fullPath := filepath.Join(dir, "full.gsn")
	if err := dataset.SaveFile(fullPath, net); err != nil {
		t.Fatal(err)
	}
	full, err := rangereach.LoadNetwork(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := full.Build(method)
	if err != nil {
		t.Fatal(err)
	}

	asn, err := shard.Partition(net, nShards, strategy)
	if err != nil {
		t.Fatal(err)
	}
	m := asn.Map(net.Name, net.NumVertices(), net.Space())

	// Backends first (their URLs seed the ring), shard handlers second,
	// installed wherever the ring placed each shard.
	swaps := make([]*swapHandler, nShards)
	urls := make([]string, nShards)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt, err := New(Config{Map: m, Backends: urls, Policy: PolicyFail})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	byURL := make(map[string]*swapHandler, nShards)
	for i, u := range urls {
		byURL[u] = swaps[i]
	}
	for sid := 0; sid < nShards; sid++ {
		snet, err := asn.ShardNetwork(net, sid)
		if err != nil {
			t.Fatal(err)
		}
		spath := filepath.Join(dir, fmt.Sprintf("shard%d.gsn", sid))
		if err := dataset.SaveFile(spath, snet); err != nil {
			t.Fatal(err)
		}
		loaded, err := rangereach.LoadNetwork(spath)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := loaded.Build(method)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Index: idx})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		byURL[rt.BackendFor(sid)].set(srv.Handler())
	}
	return &e2eCluster{
		router:   rt,
		handler:  rt.Handler(),
		oracle:   oracle,
		vertices: net.NumVertices(),
		space:    full.Space(),
	}
}

// queries draws a randomized suite: vertices uniform over the id space,
// regions from tiny single-shard rectangles up to 60% of the space
// (guaranteed to span multiple spatial shards), plus the whole space.
func (c *e2eCluster) queries(rng *rand.Rand, n int) []queryRequest {
	extents := []float64{0.01, 0.05, 0.2, 0.6}
	w := c.space.MaxX - c.space.MinX
	h := c.space.MaxY - c.space.MinY
	out := make([]queryRequest, 0, n+1)
	for i := 0; i < n; i++ {
		frac := extents[i%len(extents)]
		rw, rh := w*frac, h*frac
		x := c.space.MinX + rng.Float64()*(w-rw)
		y := c.space.MinY + rng.Float64()*(h-rh)
		out = append(out, queryRequest{
			Vertex: rng.Intn(c.vertices),
			Region: [4]float64{x, y, x + rw, y + rh},
		})
	}
	out = append(out, queryRequest{
		Vertex: rng.Intn(c.vertices),
		Region: [4]float64{c.space.MinX, c.space.MinY, c.space.MaxX, c.space.MaxY},
	})
	return out
}

func e2eNetwork() *dataset.Network {
	return dataset.Generate(dataset.GenConfig{
		Name:        "e2e",
		Users:       500,
		Venues:      250,
		AvgFriends:  6,
		AvgCheckins: 3,
		Regime:      dataset.Fragmented,
		Clusters:    20,
		Seed:        11,
	})
}

// TestShardedClusterMatchesUnsharded is the end-to-end acceptance test:
// a >=3-shard cluster served through the router answers every query —
// single and batch, including regions spanning multiple shards —
// identically to one unsharded index.
func TestShardedClusterMatchesUnsharded(t *testing.T) {
	net := e2eNetwork()
	for _, strategy := range []shard.Strategy{shard.Spatial, shard.Social} {
		t.Run(strategy.String(), func(t *testing.T) {
			c := newE2ECluster(t, net, 3, strategy, rangereach.ThreeDReach)
			rng := rand.New(rand.NewSource(99))
			queries := c.queries(rng, 150)

			positives := 0
			for i, q := range queries {
				rec, resp := postQuery(t, c.handler, q.Vertex, q.Region)
				if rec.Code != http.StatusOK {
					t.Fatalf("query %d: status %d: %s", i, rec.Code, rec.Body.String())
				}
				want := c.oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
				if resp.Reachable != want {
					t.Fatalf("query %d (vertex %d region %v): sharded=%v unsharded=%v",
						i, q.Vertex, q.Region, resp.Reachable, want)
				}
				if want {
					positives++
				}
			}
			if positives == 0 || positives == len(queries) {
				t.Fatalf("degenerate suite: %d/%d positive — the comparison proves nothing", positives, len(queries))
			}

			rec, batch := postBatch(t, c.handler, queries)
			if rec.Code != http.StatusOK {
				t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
			}
			if batch.Partial {
				t.Fatal("batch flagged partial on a healthy cluster")
			}
			for i, q := range queries {
				want := c.oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
				if batch.Results[i] != want {
					t.Fatalf("batch query %d: sharded=%v unsharded=%v", i, batch.Results[i], want)
				}
			}
		})
	}
}

// TestShardedClusterFiveShards stresses the placement and merge paths
// at a shard count that does not divide the backend count evenly.
func TestShardedClusterFiveShards(t *testing.T) {
	net := e2eNetwork()
	c := newE2ECluster(t, net, 5, shard.Spatial, rangereach.SocReach)
	rng := rand.New(rand.NewSource(7))
	queries := c.queries(rng, 60)
	rec, batch := postBatch(t, c.handler, queries)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	for i, q := range queries {
		want := c.oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
		if batch.Results[i] != want {
			t.Fatalf("query %d: sharded=%v unsharded=%v", i, batch.Results[i], want)
		}
	}
}

// TestShardedExplainParity spot-checks that shard servers accept the
// exact wire bytes the router sends (contract drift between the two
// packages' request structs would surface here).
func TestShardedWireContract(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(queryRequest{Vertex: 3, Region: [4]float64{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	want := `{"vertex":3,"region":[1,2,3,4]}`
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != want {
		t.Fatalf("query wire format drifted: %s", got)
	}
}
