package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard"
)

// swapHandler lets a backend's behavior be installed after its URL is
// known — placement maps shards onto backends, so the per-shard stub
// must follow the ring's choice, not the construction order.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "no handler installed", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// testMap builds a shard map with the given per-shard bounds over a
// 100-vertex id space.
func testMap(bounds ...[4]float64) *shard.Map {
	m := &shard.Map{
		Version:  shard.MapVersion,
		Name:     "test",
		Strategy: "spatial",
		Vertices: 100,
		Space:    [4]float64{0, 0, 10, 10},
	}
	for i, b := range bounds {
		m.Shards = append(m.Shards, shard.MapShard{ID: i, Venues: 5, Bounds: b})
	}
	return m
}

// testCluster starts one stub backend per shard, wires each shard's
// handler to the backend the ring placed it on, and returns the router
// plus an installer for per-shard behavior.
func testCluster(t *testing.T, m *shard.Map, cfg Config) (*Router, func(sid int, h http.HandlerFunc)) {
	t.Helper()
	n := m.NumShards()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	cfg.Map = m
	cfg.Backends = urls
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	byURL := make(map[string]*swapHandler, n)
	for i, u := range urls {
		byURL[u] = swaps[i]
	}
	install := func(sid int, h http.HandlerFunc) {
		sw, ok := byURL[rt.BackendFor(sid)]
		if !ok {
			t.Fatalf("shard %d placed on unknown backend %q", sid, rt.BackendFor(sid))
		}
		sw.set(h)
	}
	return rt, install
}

func answer(reachable bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"reachable":%v}`, reachable)
	}
}

func postQuery(t *testing.T, h http.Handler, vertex int, region [4]float64) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	body, err := json.Marshal(queryRequest{Vertex: vertex, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp queryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

func postBatch(t *testing.T, h http.Handler, queries []queryRequest) (*httptest.ResponseRecorder, batchResponse) {
	t.Helper()
	body, err := json.Marshal(batchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp batchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

var wholeSpace = [4]float64{0, 0, 10, 10}

func TestQueryFirstPositiveCancelsRemaining(t *testing.T) {
	m := testMap(wholeSpace, wholeSpace)
	rt, install := testCluster(t, m, Config{})
	canceled := make(chan struct{})
	install(0, answer(true))
	install(1, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: net/http only watches for client
		// disconnect (and cancels r.Context) once the request body is
		// consumed — which rrserve's JSON decode always does. Then park
		// until the router's early exit cancels the call; a shard that
		// never observes the cancel would hang the full 2s shard
		// timeout and fail the deadline below.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		close(canceled)
	})
	start := time.Now()
	rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
	if rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("want positive 200, got %d %q", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("positive answer took %v; early exit did not fire", elapsed)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("slow shard never saw the cancellation")
	}
	if resp.Shards != 2 {
		t.Fatalf("response consulted %d shards, want 2", resp.Shards)
	}
}

func TestQueryAllNegativeWaitsForAllShards(t *testing.T) {
	m := testMap(wholeSpace, wholeSpace, wholeSpace)
	rt, install := testCluster(t, m, Config{})
	var completed atomic.Int32
	for sid := 0; sid < 3; sid++ {
		install(sid, func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(20 * time.Millisecond)
			completed.Add(1)
			answer(false)(w, r)
		})
	}
	rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
	if rec.Code != http.StatusOK || resp.Reachable {
		t.Fatalf("want negative 200, got %d %q", rec.Code, rec.Body.String())
	}
	if got := completed.Load(); got != 3 {
		t.Fatalf("router answered after %d of 3 shards", got)
	}
	if resp.Partial {
		t.Fatal("clean all-negative flagged partial")
	}
}

func TestQueryShardDownPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy     Policy
		liveAnswer bool
		wantCode   int
		wantReach  bool
		wantPart   bool
	}{
		// A live positive is exact no matter what failed.
		{PolicyFail, true, http.StatusOK, true, false},
		{PolicyDegrade, true, http.StatusOK, true, false},
		// All-negative with a dead shard: fail vs degrade.
		{PolicyFail, false, http.StatusBadGateway, false, false},
		{PolicyDegrade, false, http.StatusOK, false, true},
	} {
		t.Run(fmt.Sprintf("%v-live-%v", tc.policy, tc.liveAnswer), func(t *testing.T) {
			m := testMap(wholeSpace, wholeSpace)
			rt, install := testCluster(t, m, Config{Policy: tc.policy})
			install(0, answer(tc.liveAnswer))
			install(1, func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "boom", http.StatusInternalServerError)
			})
			rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
			if rec.Code != tc.wantCode {
				t.Fatalf("got %d %q, want %d", rec.Code, rec.Body.String(), tc.wantCode)
			}
			if rec.Code == http.StatusOK && (resp.Reachable != tc.wantReach || resp.Partial != tc.wantPart) {
				t.Fatalf("got reachable=%v partial=%v, want %v/%v", resp.Reachable, resp.Partial, tc.wantReach, tc.wantPart)
			}
		})
	}
}

func TestQueryBoundsPruning(t *testing.T) {
	left := [4]float64{0, 0, 4, 10}
	right := [4]float64{6, 0, 10, 10}
	m := testMap(left, right)
	rt, install := testCluster(t, m, Config{})
	var rightHits atomic.Int32
	install(0, answer(true))
	install(1, func(w http.ResponseWriter, r *http.Request) {
		rightHits.Add(1)
		answer(false)(w, r)
	})
	rec, resp := postQuery(t, rt.Handler(), 1, [4]float64{1, 1, 2, 2})
	if rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("got %d %q", rec.Code, rec.Body.String())
	}
	if resp.Shards != 1 {
		t.Fatalf("consulted %d shards, want 1 (right shard pruned)", resp.Shards)
	}
	if rightHits.Load() != 0 {
		t.Fatal("pruned shard was called")
	}
	// A region intersecting no shard answers negative with no calls.
	rec, resp = postQuery(t, rt.Handler(), 1, [4]float64{4.5, 0, 5.5, 10})
	if rec.Code != http.StatusOK || resp.Reachable || resp.Shards != 0 {
		t.Fatalf("gap query: got %d %+v", rec.Code, resp)
	}
}

func TestBatchSubsetsAndMerge(t *testing.T) {
	left := [4]float64{0, 0, 4, 10}
	right := [4]float64{6, 0, 10, 10}
	m := testMap(left, right)
	rt, install := testCluster(t, m, Config{})
	var leftGot, rightGot atomic.Int32
	batchStub := func(got *atomic.Int32, result bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req batchRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			got.Add(int32(len(req.Queries)))
			results := make([]bool, len(req.Queries))
			for i := range results {
				results[i] = result
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(shardBatchReply{Results: results})
		}
	}
	install(0, batchStub(&leftGot, true))
	install(1, batchStub(&rightGot, false))
	queries := []queryRequest{
		{Vertex: 1, Region: [4]float64{1, 1, 2, 2}},   // left only
		{Vertex: 2, Region: [4]float64{7, 1, 8, 2}},   // right only
		{Vertex: 3, Region: [4]float64{1, 1, 9, 9}},   // spans both
		{Vertex: 4, Region: [4]float64{4.5, 1, 5, 2}}, // neither
	}
	rec, resp := postBatch(t, rt.Handler(), queries)
	if rec.Code != http.StatusOK {
		t.Fatalf("got %d %q", rec.Code, rec.Body.String())
	}
	want := []bool{true, false, true, false}
	for i, w := range want {
		if resp.Results[i] != w {
			t.Fatalf("query %d: got %v, want %v (results %v)", i, resp.Results[i], w, resp.Results)
		}
	}
	if leftGot.Load() != 2 || rightGot.Load() != 2 {
		t.Fatalf("subset sizes: left=%d right=%d, want 2/2", leftGot.Load(), rightGot.Load())
	}
}

func TestBatchShardDownPolicies(t *testing.T) {
	m := testMap(wholeSpace, wholeSpace)
	queries := []queryRequest{{Vertex: 1, Region: wholeSpace}}
	t.Run("fail", func(t *testing.T) {
		rt, install := testCluster(t, m, Config{Policy: PolicyFail})
		install(0, answerBatch(false))
		install(1, http.NotFound)
		rec, _ := postBatch(t, rt.Handler(), queries)
		if rec.Code != http.StatusBadGateway {
			t.Fatalf("got %d %q, want 502", rec.Code, rec.Body.String())
		}
	})
	t.Run("degrade", func(t *testing.T) {
		rt, install := testCluster(t, m, Config{Policy: PolicyDegrade})
		install(0, answerBatch(false))
		install(1, http.NotFound)
		rec, resp := postBatch(t, rt.Handler(), queries)
		if rec.Code != http.StatusOK || !resp.Partial {
			t.Fatalf("got %d partial=%v, want 200 partial", rec.Code, resp.Partial)
		}
	})
}

func answerBatch(result bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]bool, len(req.Queries))
		for i := range results {
			results[i] = result
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(shardBatchReply{Results: results})
	}
}

func TestHedgedRequestRescuesSlowShard(t *testing.T) {
	m := testMap(wholeSpace)
	rt, install := testCluster(t, m, Config{Hedge: 25 * time.Millisecond})
	var calls atomic.Int32
	install(0, func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		_, _ = io.Copy(io.Discard, r.Body) // unblock disconnect detection
		if n == 1 {
			// First attempt stalls well past the hedge delay.
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		answer(true)(w, r)
	})
	start := time.Now()
	rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
	if rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("got %d %q", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue: took %v", elapsed)
	}
	if calls.Load() < 2 {
		t.Fatalf("expected a hedged second attempt, saw %d calls", calls.Load())
	}
	if rt.mHedges.Value() == 0 {
		t.Fatal("hedge counter not incremented")
	}
}

func TestHedgeRetriesFastFailure(t *testing.T) {
	m := testMap(wholeSpace)
	rt, install := testCluster(t, m, Config{Hedge: 500 * time.Millisecond})
	var calls atomic.Int32
	install(0, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		answer(true)(w, r)
	})
	start := time.Now()
	rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
	if rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("got %d %q", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("fast-failure retry waited for the hedge timer: %v", elapsed)
	}
}

func TestHealthMarkdownAndRecovery(t *testing.T) {
	m := testMap(wholeSpace)
	rt, install := testCluster(t, m, Config{
		Policy:       PolicyFail,
		DownAfter:    2,
		DownCooldown: 60 * time.Millisecond,
	})
	var calls atomic.Int32
	var healthy atomic.Bool
	install(0, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		answer(true)(w, r)
	})
	// Two failures cross DownAfter.
	for i := 0; i < 2; i++ {
		if rec, _ := postQuery(t, rt.Handler(), 1, wholeSpace); rec.Code != http.StatusBadGateway {
			t.Fatalf("failure %d: got %d", i, rec.Code)
		}
	}
	if !rt.health[0].isDown() {
		t.Fatal("shard not marked down after DownAfter failures")
	}
	// While down, requests short-circuit without touching the backend.
	before := calls.Load()
	if rec, _ := postQuery(t, rt.Handler(), 1, wholeSpace); rec.Code != http.StatusBadGateway {
		t.Fatalf("marked-down query: got %d", rec.Code)
	}
	if calls.Load() != before {
		t.Fatal("marked-down shard was still called")
	}
	var mb strings.Builder
	if err := rt.Metrics().WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mb.String(), `rr_router_shard_down{shard="0"} 1`) {
		t.Fatalf("mark-down gauge not exported:\n%s", mb.String())
	}
	// After the cooldown a half-open trial against a recovered backend
	// closes the breaker.
	healthy.Store(true)
	time.Sleep(80 * time.Millisecond)
	rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
	if rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("recovery query: got %d %q", rec.Code, rec.Body.String())
	}
	if rt.health[0].isDown() {
		t.Fatal("shard still marked down after successful trial")
	}
}

// TestCanceledProbeDoesNotStickShardDown is the router-level
// regression test for the half-open probe leak: an early exit that
// cancels a marked-down shard's trial request must release the probe,
// so the shard can still recover on a later request.
func TestCanceledProbeDoesNotStickShardDown(t *testing.T) {
	m := testMap(wholeSpace, wholeSpace)
	rt, install := testCluster(t, m, Config{
		Policy:       PolicyDegrade,
		DownAfter:    1,
		DownCooldown: 50 * time.Millisecond,
	})
	// Mark shard 1 down.
	install(0, answer(false))
	install(1, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	})
	if rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace); rec.Code != http.StatusOK || !resp.Partial {
		t.Fatalf("mark-down query: got %d %q", rec.Code, rec.Body.String())
	}
	if !rt.health[1].isDown() {
		t.Fatal("shard 1 not marked down")
	}
	// After the cooldown, shard 1's half-open trial parks until it is
	// canceled by shard 0's positive (early exit) — the probe ends with
	// neither success nor failure.
	install(0, answer(true))
	install(1, func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	})
	time.Sleep(80 * time.Millisecond)
	if rec, resp := postQuery(t, rt.Handler(), 1, wholeSpace); rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("early-exit query: got %d %q", rec.Code, rec.Body.String())
	}
	// Shard 1 is healthy again; the router must eventually grant it a
	// fresh trial. With the probe leaked, every query below would stay
	// a degraded negative forever.
	install(0, answer(false))
	install(1, answer(true))
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, resp := postQuery(t, rt.Handler(), 1, wholeSpace)
		if resp.Reachable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered shard never probed again: canceled trial leaked the probe")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rt.health[1].isDown() {
		t.Fatal("shard 1 still marked down after successful trial")
	}
}

// TestBatchFailedShardExactPositives: a failed shard whose queries all
// have positives from live shards does not make the batch ambiguous —
// the result is exact, so PolicyFail must not answer 502 and the
// response is not partial.
func TestBatchFailedShardExactPositives(t *testing.T) {
	left := [4]float64{0, 0, 4, 10}
	right := [4]float64{6, 0, 10, 10}
	m := testMap(left, right)
	rt, install := testCluster(t, m, Config{Policy: PolicyFail})
	// Left answers after the right shard's failure has already landed,
	// so the all-settled state is only reached on the final shard result
	// (the early-exit branch is skipped).
	install(0, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond)
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]bool, len(req.Queries))
		for i, q := range req.Queries {
			results[i] = q.Vertex != 2 // the left-only query for vertex 2 stays negative
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(shardBatchReply{Results: results})
	})
	install(1, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	queries := []queryRequest{
		{Vertex: 1, Region: [4]float64{1, 1, 9, 9}}, // spans both; positive from left
		{Vertex: 2, Region: [4]float64{1, 1, 2, 2}}, // left only; negative from a live shard
	}
	rec, resp := postBatch(t, rt.Handler(), queries)
	if rec.Code != http.StatusOK {
		t.Fatalf("got %d %q, want 200: failed shard's only query is positive elsewhere", rec.Code, rec.Body.String())
	}
	if !resp.Results[0] || resp.Results[1] {
		t.Fatalf("results %v, want [true false]", resp.Results)
	}
	if resp.Partial {
		t.Fatal("exact result flagged partial")
	}
}

func TestRouterValidation(t *testing.T) {
	m := testMap(wholeSpace)
	rt, install := testCluster(t, m, Config{MaxBodyBytes: 256, MaxBatch: 4})
	install(0, answer(false))

	rec, _ := postQuery(t, rt.Handler(), 100, wholeSpace)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: got %d", rec.Code)
	}
	rec, _ = postBatch(t, rt.Handler(), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: got %d", rec.Code)
	}
	rec, _ = postBatch(t, rt.Handler(), make([]queryRequest, 5))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: got %d", rec.Code)
	}
	big := bytes.Repeat([]byte(" "), 1024)
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(big))
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "exceeds") {
		t.Fatalf("413 body is not the JSON error: %q", rec.Body.String())
	}
}

func TestRouterHealthz(t *testing.T) {
	m := testMap(wholeSpace, wholeSpace)
	rt, install := testCluster(t, m, Config{})
	install(0, answer(false))
	install(1, answer(false))
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: got %d", rec.Code)
	}
	var resp healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shards != 2 || resp.Vertices != 100 || resp.Strategy != "spatial" {
		t.Fatalf("healthz payload %+v", resp)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error without a map")
	}
	if _, err := New(Config{Map: testMap(wholeSpace)}); err == nil {
		t.Fatal("want error without backends")
	}
	bad := testMap(wholeSpace)
	bad.Version = 9
	if _, err := New(Config{Map: bad, Backends: []string{"http://x"}}); err == nil {
		t.Fatal("want error for invalid map")
	}
}
