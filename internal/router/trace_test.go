package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	rangereach "repro"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
)

// postTracedQuery sends /v1/query with a client traceparent and
// returns the recorder plus decoded response.
func postTracedQuery(t *testing.T, h http.Handler, vertex int, region [4]float64, traceparent string) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	body, err := json.Marshal(queryRequest{Vertex: vertex, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	if traceparent != "" {
		req.Header.Set(trace.TraceparentHeader, traceparent)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp queryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

// getTrace fetches /v1/trace/{id}, retrying briefly because early-exit
// traces finish asynchronously after the response is written.
func getTrace(t *testing.T, h http.Handler, id string) *trace.ClusterTrace {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, "/v1/trace/"+id, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			var tr trace.ClusterTrace
			if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
				t.Fatalf("bad trace body %q: %v", rec.Body.String(), err)
			}
			return &tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s not retrievable: %d %s", id, rec.Code, rec.Body.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func spansNamed(tr *trace.ClusterTrace, name string) []trace.ClusterSpan {
	var out []trace.ClusterSpan
	for _, sp := range tr.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestTracePropagationAndStitching: a client traceparent forces
// collection, the router propagates the same trace id (with a fresh
// span id) to every shard, and the stitched trace holds the router's
// placement and fanout spans plus one shard_call span per shard
// carrying the shard's own stats.
func TestTracePropagationAndStitching(t *testing.T) {
	m := testMap([4]float64{0, 0, 5, 10}, [4]float64{5, 0, 10, 10})
	rt, install := testCluster(t, m, Config{})

	var mu sync.Mutex
	seen := make(map[int]string) // shard -> traceparent received
	for sid := 0; sid < 2; sid++ {
		sid := sid
		install(sid, func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen[sid] = r.Header.Get(trace.TraceparentHeader)
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"reachable":false,"stats":{"method":"stub","labels":%d}}`, 10+sid)
		})
	}

	clientTID, clientSID := trace.NewTraceID(), trace.NewSpanID()
	rec, resp := postTracedQuery(t, rt.Handler(), 1, wholeSpace, trace.FormatTraceparent(clientTID, clientSID))
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	if resp.TraceID != clientTID {
		t.Fatalf("response trace id %q, want the client's %q", resp.TraceID, clientTID)
	}

	// Both shards saw the same trace id under fresh span ids.
	mu.Lock()
	defer mu.Unlock()
	for sid := 0; sid < 2; sid++ {
		tid, spid, ok := trace.ParseTraceparent(seen[sid])
		if !ok {
			t.Fatalf("shard %d received invalid traceparent %q", sid, seen[sid])
		}
		if tid != clientTID {
			t.Errorf("shard %d saw trace id %q, want %q", sid, tid, clientTID)
		}
		if spid == clientSID {
			t.Errorf("shard %d saw the client's span id %q; want a fresh per-hop id", sid, spid)
		}
	}

	tr := getTrace(t, rt.Handler(), clientTID)
	if tr.Endpoint != "query" || tr.Status != http.StatusOK || tr.Reason != trace.ReasonForced {
		t.Fatalf("trace envelope: %+v", tr)
	}
	if got := spansNamed(tr, "placement"); len(got) != 1 || got[0].Tier != trace.TierRouter || got[0].Attrs["shards"] != "2" {
		t.Fatalf("placement span: %+v", got)
	}
	if got := spansNamed(tr, "fanout"); len(got) != 1 || got[0].Attrs["early_exit"] != "false" {
		t.Fatalf("fanout span: %+v", got)
	}
	calls := spansNamed(tr, "shard_call")
	if len(calls) != 2 {
		t.Fatalf("want 2 shard_call spans, got %+v", calls)
	}
	for _, sp := range calls {
		if sp.Tier != trace.TierShard || sp.Err != "" || sp.Attrs["backend"] == "" {
			t.Fatalf("shard_call span: %+v", sp)
		}
		var st rangereach.QueryStats
		if err := json.Unmarshal(sp.Stats, &st); err != nil {
			t.Fatalf("shard %d stats %q: %v", sp.Shard, sp.Stats, err)
		}
		if st.Method != "stub" || st.Labels != int64(10+sp.Shard) {
			t.Fatalf("shard %d stitched stats: %+v", sp.Shard, st)
		}
	}
}

// TestTraceEarlyExitStitchesStragglers: a positive early exit cancels
// the remaining shard calls, and the trace — finished asynchronously —
// still records the canceled calls as canceled spans.
func TestTraceEarlyExitStitchesStragglers(t *testing.T) {
	m := testMap([4]float64{0, 0, 5, 10}, [4]float64{5, 0, 10, 10})
	rt, install := testCluster(t, m, Config{})
	install(0, answer(true))
	release := make(chan struct{}) // holds shard 1 until the trace is read
	defer close(release)
	install(1, func(w http.ResponseWriter, r *http.Request) {
		<-release
	})

	tid := trace.NewTraceID()
	rec, resp := postTracedQuery(t, rt.Handler(), 1, wholeSpace, trace.FormatTraceparent(tid, trace.NewSpanID()))
	if rec.Code != http.StatusOK || !resp.Reachable {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	tr := getTrace(t, rt.Handler(), tid)
	calls := spansNamed(tr, "shard_call")
	if len(calls) != 2 {
		t.Fatalf("want both shard calls in the trace, got %+v", calls)
	}
	canceled := 0
	for _, sp := range calls {
		if sp.Err == "canceled" {
			canceled++
		}
	}
	if canceled != 1 {
		t.Fatalf("want exactly one canceled shard_call, got %+v", calls)
	}
	if got := spansNamed(tr, "fanout"); len(got) != 1 || got[0].Attrs["early_exit"] != "true" {
		t.Fatalf("fanout span: %+v", got)
	}
}

// TestTraceTailSampling: in ambient mode error traces are always kept
// while healthy fast ones obey the 1-in-N tick; with tracing off, only
// client-forced traces exist at all.
func TestTraceTailSampling(t *testing.T) {
	m := testMap([4]float64{0, 0, 10, 10})
	rt, install := testCluster(t, m, Config{TraceSample: 1 << 30, TraceSlow: time.Hour})
	install(0, answer(false))

	// Healthy and fast: collected but not retained (N is huge).
	_, resp := postTracedQuery(t, rt.Handler(), 1, wholeSpace, "")
	if resp.TraceID == "" {
		t.Fatal("ambient mode returned no trace id")
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/trace/"+resp.TraceID, nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("healthy fast trace retained: %d", rec.Code)
	}

	// Errored: always retained.
	install(0, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	rec2, _ := postTracedQuery(t, rt.Handler(), 1, wholeSpace, "")
	if rec2.Code != http.StatusBadGateway {
		t.Fatalf("want 502 from failed shard, got %d", rec2.Code)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(rec2.Body.Bytes(), &errResp)
	recent := rt.ring.Recent(1)
	if len(recent) != 1 || recent[0].Reason != trace.ReasonError || recent[0].Status != http.StatusBadGateway {
		t.Fatalf("error trace not retained: %+v (error %q)", recent, errResp.Error)
	}

	// Tracing off: ambient requests collect nothing, forced ones are kept.
	rtOff, installOff := testCluster(t, m, Config{})
	installOff(0, answer(false))
	_, respOff := postTracedQuery(t, rtOff.Handler(), 1, wholeSpace, "")
	if respOff.TraceID != "" {
		t.Fatalf("tracing off but response carries trace id %q", respOff.TraceID)
	}
	if rtOff.ring.Len() != 0 {
		t.Fatalf("tracing off but ring holds %d traces", rtOff.ring.Len())
	}
	tid := trace.NewTraceID()
	postTracedQuery(t, rtOff.Handler(), 1, wholeSpace, trace.FormatTraceparent(tid, trace.NewSpanID()))
	if tr := rtOff.ring.Get(tid); tr == nil || tr.Reason != trace.ReasonForced {
		t.Fatalf("forced trace with tracing off: %+v", tr)
	}
}

// TestTraceConcurrentScatterGather hammers traced queries (some early
// exits, so spans land from straggler goroutines) against concurrent
// /v1/trace and /v1/traces readers. The race detector is the judge.
func TestTraceConcurrentScatterGather(t *testing.T) {
	m := testMap([4]float64{0, 0, 5, 10}, [4]float64{5, 0, 10, 10})
	rt, install := testCluster(t, m, Config{TraceSample: 1})
	install(0, answer(true))
	install(1, answer(false))

	var wg sync.WaitGroup
	ids := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, resp := postTracedQuery(t, rt.Handler(), 1, wholeSpace, "")
				select {
				case ids <- resp.TraceID:
				default:
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				select {
				case id := <-ids:
					req := httptest.NewRequest(http.MethodGet, "/v1/trace/"+id, nil)
					rt.Handler().ServeHTTP(httptest.NewRecorder(), req)
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/v1/traces?n=8", nil)
				rt.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Wait()
}

// TestTraceParityWithShardExplain: the per-shard stats stitched into a
// cluster trace equal what the shard's own /v1/explain reports for the
// same query — same engine counters, same stage set.
func TestTraceParityWithShardExplain(t *testing.T) {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "parity", Users: 200, Venues: 100,
		AvgFriends: 4, AvgCheckins: 3, Clusters: 4, Seed: 11,
	})
	// Two real rrserve shards over the same index, caches disabled so
	// every run recomputes deterministically.
	backends := make([]string, 2)
	for i := range backends {
		srv, err := server.New(server.Config{
			Index:        net.MustBuild(rangereach.ThreeDReach),
			CacheEntries: -1,
			ShardID:      fmt.Sprint(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		backends[i] = ts.URL
	}
	m := testMap([4]float64{0, 0, 5, 10}, [4]float64{5, 0, 10, 10})
	rt, err := New(Config{Map: m, Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	// Find a query both shards answer negatively, so no early exit
	// cancels a shard call and every span carries stats.
	explain := func(backend string, vertex int, region [4]float64) (bool, rangereach.QueryStats) {
		t.Helper()
		url := fmt.Sprintf("%s/v1/explain?vertex=%d&region=%g,%g,%g,%g",
			backend, vertex, region[0], region[1], region[2], region[3])
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var er struct {
			Reachable bool                  `json:"reachable"`
			Stats     rangereach.QueryStats `json:"stats"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return er.Reachable, er.Stats
	}
	vertex, region := -1, wholeSpace
	for v := 0; v < m.Vertices; v++ {
		if reachable, _ := explain(backends[0], v, region); !reachable {
			vertex = v
			break
		}
	}
	if vertex < 0 {
		t.Skip("no all-negative query vertex in the synthetic network")
	}

	tid := trace.NewTraceID()
	rec, resp := postTracedQuery(t, rt.Handler(), vertex, region, trace.FormatTraceparent(tid, trace.NewSpanID()))
	if rec.Code != http.StatusOK || resp.Reachable {
		t.Fatalf("query: %d %s", rec.Code, rec.Body.String())
	}
	tr := getTrace(t, rt.Handler(), tid)
	calls := spansNamed(tr, "shard_call")
	if len(calls) != 2 {
		t.Fatalf("want 2 shard_call spans, got %+v", calls)
	}

	normalize := func(st rangereach.QueryStats) rangereach.QueryStats {
		st.Duration = 0
		for i := range st.Stages {
			st.Stages[i].Duration = 0
		}
		return st
	}
	for _, sp := range calls {
		var stitched rangereach.QueryStats
		if err := json.Unmarshal(sp.Stats, &stitched); err != nil {
			t.Fatalf("shard %d stitched stats: %v", sp.Shard, err)
		}
		_, direct := explain(rt.BackendFor(sp.Shard), vertex, region)
		got, want := normalize(stitched), normalize(direct)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shard %d: stitched stats %+v != explain stats %+v", sp.Shard, got, want)
		}
		if len(got.Stages) == 0 {
			t.Errorf("shard %d: stitched stats carry no stages", sp.Shard)
		}
	}
}

// TestClusterFederation: the router scrapes real shard registries into
// /v1/cluster and the rr_cluster_* families, with per-shard quantiles
// recovered from the scraped histogram buckets.
func TestClusterFederation(t *testing.T) {
	m := testMap([4]float64{0, 0, 5, 10}, [4]float64{5, 0, 10, 10})
	rt, install := testCluster(t, m, Config{})

	// Each stub shard exposes a real registry exposition.
	for sid := 0; sid < 2; sid++ {
		sid := sid
		reg := metrics.NewRegistry()
		q := reg.Counter("rr_queries_total", "queries")
		q.Add(int64(100 * (sid + 1)))
		reg.GaugeFunc("rr_cache_hit_ratio", "ratio", func() float64 { return 0.5 })
		reg.Gauge("rr_inflight_requests", "inflight").Set(int64(sid))
		h := reg.Histogram("rr_query_seconds", "latency", nil)
		for i := 0; i < 100; i++ {
			h.Observe(0.001 * float64(sid+1))
		}
		reg.Counter(`rr_planner_choice_total{method="3DReach"}`, "choices").Add(int64(7 * (sid + 1)))
		install(sid, func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/metrics" {
				http.NotFound(w, r)
				return
			}
			_ = reg.WritePrometheus(w)
		})
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/cluster", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster: %d %s", rec.Code, rec.Body.String())
	}
	var cl clusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cl); err != nil {
		t.Fatal(err)
	}
	if len(cl.Shards) != 2 {
		t.Fatalf("cluster shards: %+v", cl.Shards)
	}
	for sid, row := range cl.Shards {
		if row.ScrapeError != "" || row.ScrapeAgeMillis < 0 {
			t.Fatalf("shard %d scrape: %+v", sid, row)
		}
		if row.Queries != int64(100*(sid+1)) || row.CacheHitRatio != 0.5 || row.Inflight != int64(sid) {
			t.Errorf("shard %d digested values: %+v", sid, row)
		}
		if row.P99Micros <= 0 {
			t.Errorf("shard %d p99 not recovered: %+v", sid, row)
		}
		if row.Planner["3DReach"] != int64(7*(sid+1)) {
			t.Errorf("shard %d planner mix: %+v", sid, row.Planner)
		}
	}
	if cl.ClusterP99Micros <= 0 {
		t.Errorf("cluster p99 missing: %+v", cl)
	}

	// The same snapshot feeds the rr_cluster_* exposition.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(mrec, mreq)
	samples, err := metrics.ParseProm(mrec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := metrics.Value(samples, "rr_cluster_shard_queries_total", map[string]string{"shard": "1"}); !ok || v != 200 {
		t.Errorf("rr_cluster_shard_queries_total{shard=1}: (%v, %v)", v, ok)
	}
	if v, ok := metrics.Value(samples, "rr_cluster_shard_p99_seconds", map[string]string{"shard": "0"}); !ok || v <= 0 {
		t.Errorf("rr_cluster_shard_p99_seconds{shard=0}: (%v, %v)", v, ok)
	}
	if v, ok := metrics.Value(samples, "rr_cluster_shard_health", map[string]string{"shard": "0"}); !ok || v != 1 {
		t.Errorf("rr_cluster_shard_health{shard=0}: (%v, %v)", v, ok)
	}
	if v, ok := metrics.Value(samples, "rr_cluster_shard_staleness_seconds", map[string]string{"shard": "0"}); !ok || v < 0 {
		t.Errorf("rr_cluster_shard_staleness_seconds{shard=0}: (%v, %v)", v, ok)
	}
	if v, ok := metrics.Value(samples, "rr_cluster_query_p99_seconds", nil); !ok || v <= 0 {
		t.Errorf("rr_cluster_query_p99_seconds: (%v, %v)", v, ok)
	}

	// A dead shard turns unhealthy but /v1/cluster still answers.
	install(0, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	rt.federateOnce()
	s := rt.fed.get(0)
	if s.Err == "" {
		t.Fatal("scrape failure not recorded")
	}
}

// TestTraceBuilderIDConcurrentWithSpans: traceID is read by shard-call
// goroutines mid-flight while others append spans under the builder
// mutex. The id must come from the builder's immutable copy, never
// through the mutex-guarded trace — run with -race to enforce it.
func TestTraceBuilderIDConcurrentWithSpans(t *testing.T) {
	tb := newTraceBuilder("0123456789abcdef0123456789abcdef", "query", true, time.Now())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := tb.traceID(); got != "0123456789abcdef0123456789abcdef" {
					t.Errorf("traceID = %q mid-flight", got)
					return
				}
				tb.span("shard_call", trace.TierShard, shard, time.Now(), "", nil, nil)
			}
		}(g)
	}
	wg.Wait()
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if got := len(tb.tr.Spans); got != 4*200 {
		t.Fatalf("spans recorded = %d, want %d", got, 4*200)
	}
}
