package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over backend addresses with virtual
// nodes, used to place shards on backends. Placement is by consistent
// hashing with bounded loads: a shard walks the ring clockwise from its
// hash and lands on the first backend still under the load cap
// ceil(shards/backends). The cap guarantees an even spread — with equal
// shard and backend counts every backend serves exactly one shard —
// while keeping the consistent-hashing property that adding or removing
// a backend relocates only the shards that hashed near it.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int // index into the backend list
}

// DefaultVNodes is the virtual-node count per backend: enough to keep
// ring arcs well mixed at the cluster sizes rrrouter targets.
const DefaultVNodes = 64

// NewRing builds a ring over the given backends (identified by index)
// with vnodes virtual nodes each (0 selects DefaultVNodes).
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(backends)*vnodes)}
	for i, b := range backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", b, v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Place assigns each of n shards to a backend index under the bounded
// load cap. The result maps shard id to backend index; it is
// deterministic for a given (backends, vnodes, n).
func (r *Ring) Place(n, backends int) []int {
	if len(r.points) == 0 || backends <= 0 {
		return nil
	}
	maxLoad := (n + backends - 1) / backends
	load := make([]int, backends)
	out := make([]int, n)
	for shard := 0; shard < n; shard++ {
		h := hash64(fmt.Sprintf("shard-%d", shard))
		i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
		assigned := -1
		for step := 0; step < len(r.points); step++ {
			p := r.points[(i+step)%len(r.points)]
			if load[p.backend] < maxLoad {
				assigned = p.backend
				break
			}
		}
		if assigned < 0 {
			// Unreachable: the cap times backends is at least n.
			assigned = shard % backends
		}
		load[assigned]++
		out[shard] = assigned
	}
	return out
}

// Placement maps every shard id of a cluster with n shards to its
// backend address.
func Placement(n int, backends []string, vnodes int) []string {
	ring := NewRing(backends, vnodes)
	idx := ring.Place(n, len(backends))
	out := make([]string, n)
	for shard, b := range idx {
		out[shard] = backends[b]
	}
	return out
}
