package router

// Distributed-trace assembly for the scatter-gather tier. Every traced
// request gets a traceBuilder that collects trace.ClusterSpans from the
// router's own phases (placement, fan-out, hedge fires) and from each
// shard call's returned QueryStats, then lands the stitched
// trace.ClusterTrace in the router's ring where GET /v1/trace/{id}
// serves it.
//
// Collection is head-decided, retention tail-decided: when tracing is
// on (Config.TraceSample > 0) every request collects — that is what
// lets the sampler keep *all* slow and errored traces — and the cheap
// decision at the end picks what survives into the ring. When tracing
// is off, a request only collects if the client itself sent a
// traceparent header; otherwise the router's untraced fast path does
// no trace work beyond that single header lookup.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/trace"
)

// traceCtxKey carries the request's traceBuilder through the
// scatter-gather contexts into callShard and the hedging loop.
type traceCtxKey struct{}

func traceFrom(ctx context.Context) *traceBuilder {
	tb, _ := ctx.Value(traceCtxKey{}).(*traceBuilder)
	return tb
}

// traceBuilder accumulates one request's spans. Append paths are
// mutex-guarded because shard calls record concurrently; all methods
// are nil-receiver safe so untraced requests thread a nil builder
// everywhere.
type traceBuilder struct {
	id     string // immutable copy of the trace id: readable without mu
	start  time.Time
	forced bool // client sent traceparent: always retain

	mu sync.Mutex
	tr *trace.ClusterTrace //lint:guardedby mu
	// async flags that the handler owns completion (early-exit
	// stragglers). Written and read on the handler goroutine only,
	// before the straggler drain starts, so it needs no lock.
	async bool
}

// newTraceBuilder starts collection for one request. traceID is the
// adopted (client) or minted id.
func newTraceBuilder(traceID, endpoint string, forced bool, start time.Time) *traceBuilder {
	return &traceBuilder{
		id:     traceID,
		start:  start,
		forced: forced,
		tr: &trace.ClusterTrace{
			TraceID:  traceID,
			Endpoint: endpoint,
			Start:    start,
		},
	}
}

// traceID returns the request's trace id from the builder's immutable
// copy — shard goroutines call this mid-flight while others append
// spans under mu, so it must not read through tb.tr.
func (tb *traceBuilder) traceID() string {
	if tb == nil {
		return ""
	}
	return tb.id
}

// span records one completed step. Router-tier steps pass
// trace.NoShard.
func (tb *traceBuilder) span(name, tier string, shard int, start time.Time, err string, attrs map[string]string, stats json.RawMessage) {
	if tb == nil {
		return
	}
	sp := trace.ClusterSpan{
		Name:       name,
		Tier:       tier,
		Shard:      shard,
		StartNS:    start.Sub(tb.start).Nanoseconds(),
		DurationNS: time.Since(start).Nanoseconds(),
		Err:        err,
		Attrs:      attrs,
		Stats:      stats,
	}
	tb.mu.Lock()
	tb.tr.Spans = append(tb.tr.Spans, sp)
	tb.mu.Unlock()
}

// event records an instantaneous step (a hedge firing).
func (tb *traceBuilder) event(name, tier string, shard int, attrs map[string]string) {
	if tb == nil {
		return
	}
	tb.span(name, tier, shard, time.Now(), "", attrs, nil)
}

// beginAsync transfers completion ownership to the handler: the
// instrument middleware will not store the trace, the handler's
// straggler-drain goroutine will. Called on the handler goroutine
// before it returns, so the instrument read needs no lock.
func (tb *traceBuilder) beginAsync() {
	if tb != nil {
		tb.async = true
	}
}

func (tb *traceBuilder) isAsync() bool { return tb != nil && tb.async }

// startTrace decides whether this request collects a trace. A valid
// client traceparent always traces (and pins the trace id the client
// already knows); otherwise ambient collection requires TraceSample >
// 0. The returned request carries the builder in its context.
func (rt *Router) startTrace(r *http.Request, endpoint string, start time.Time) (*traceBuilder, *http.Request) {
	traceID, _, forced := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
	if !forced {
		if rt.cfg.TraceSample <= 0 {
			return nil, r
		}
		traceID = trace.NewTraceID()
	}
	tb := newTraceBuilder(traceID, endpoint, forced, start)
	rt.mTraces.Inc()
	return tb, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tb))
}

// storeTrace runs the tail-sampling decision and retains the finished
// trace in the ring. Spans must not be appended after this call.
func (rt *Router) storeTrace(tb *traceBuilder, status int, elapsed time.Duration) {
	if tb == nil {
		return
	}
	keep, reason := rt.sampler.Keep(elapsed, status >= 400, tb.forced)
	if !keep {
		return
	}
	tb.mu.Lock()
	tb.tr.Status = status
	tb.tr.DurationNS = elapsed.Nanoseconds()
	tb.tr.Reason = reason
	tr := tb.tr
	tb.mu.Unlock()
	rt.ring.Put(tr)
	rt.mTracesKept.Inc()
}

// ---- retrieval endpoints ----

// traceSummary is one /v1/traces row.
type traceSummary struct {
	TraceID    string    `json:"trace_id"`
	Endpoint   string    `json:"endpoint"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Status     int       `json:"status"`
	Reason     string    `json:"reason"`
	Spans      int       `json:"spans"`
}

type tracesResponse struct {
	Traces []traceSummary `json:"traces"`
}

func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := rt.ring.Get(id)
	if tr == nil {
		rt.writeError(w, http.StatusNotFound, "trace %q not found (never sampled, or evicted from the ring)", id)
		return
	}
	rt.writeJSON(w, http.StatusOK, tr)
}

func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := parsePositiveInt(q); err == nil {
			n = v
		}
	}
	recent := rt.ring.Recent(n)
	resp := tracesResponse{Traces: make([]traceSummary, len(recent))}
	for i, tr := range recent {
		resp.Traces[i] = traceSummary{
			TraceID:    tr.TraceID,
			Endpoint:   tr.Endpoint,
			Start:      tr.Start,
			DurationNS: tr.DurationNS,
			Status:     tr.Status,
			Reason:     tr.Reason,
			Spans:      len(tr.Spans),
		}
	}
	rt.writeJSON(w, http.StatusOK, resp)
}
