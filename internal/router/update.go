package router

// Cluster updates: POST /v1/update routed to the owning shard(s).
//
// The shards replicate the full social graph and partition only the
// venue set (internal/shard), which fixes the routing rule per op:
//
//   - add_user, add_edge, del_edge touch the shared graph: broadcast
//     to every shard, all must succeed.
//   - add_venue has exactly one owner — the shard whose venue bounds
//     best fit the point. The owner gets the venue; every other shard
//     gets an add_user placeholder so the global vertex-id space stays
//     aligned (the router verifies the returned ids agree).
//   - move_venue is broadcast: only the owner holds the vertex as a
//     venue and answers 200, the rest answer 409 ("not a venue") which
//     the router tolerates; at least one success is required.
//
// All updates serialize on updateMu: the id-alignment step must not
// interleave with another add, and the copy-on-write bounds view has a
// single writer. Updates are never hedged — a replayed mutation is not
// idempotent the way a query is.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/geom"
)

// updateRequest mirrors internal/server's update wire type.
type updateRequest struct {
	Op     string  `json:"op"` // add_user | add_venue | add_edge | del_edge | move_venue
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Vertex int     `json:"vertex"`
}

// updateResponse is the router's answer: the new vertex id (adds), the
// owning shard for venue ops, and the maximum generation the update
// reached across the touched shards.
type updateResponse struct {
	ID    *int   `json:"id,omitempty"`
	Owner *int   `json:"owner,omitempty"`
	Gen   uint64 `json:"gen"`
}

// shardUpdateReply is the subset of rrserve's /v1/update response the
// router consumes.
type shardUpdateReply struct {
	ID  *int   `json:"id"`
	Gen uint64 `json:"gen"`
}

// shardUpdateResult is one shard's outcome in a fan-out.
type shardUpdateResult struct {
	sid    int
	status int
	reply  shardUpdateReply
	err    error
}

// postUpdate sends one update to one shard. Unlike callShard it is
// never hedged, bypasses the health breaker (an update must reach every
// shard; a down shard simply fails it), and surfaces the HTTP status so
// callers can tolerate expected rejections (move_venue non-owners).
func (rt *Router) postUpdate(ctx context.Context, sid int, body []byte) shardUpdateResult {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.backendOf[sid]+"/v1/update", bytes.NewReader(body))
	if err != nil {
		return shardUpdateResult{sid: sid, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return shardUpdateResult{sid: sid, err: err}
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return shardUpdateResult{sid: sid, err: err}
	}
	out := shardUpdateResult{sid: sid, status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("shard %d: %s: %s", sid, resp.Status, firstLine(data))
		return out
	}
	if err := json.Unmarshal(data, &out.reply); err != nil {
		out.err = fmt.Errorf("shard %d: bad reply: %w", sid, err)
	}
	return out
}

// fanoutUpdate sends per-shard bodies to every shard concurrently and
// returns the results indexed by shard id.
func (rt *Router) fanoutUpdate(ctx context.Context, bodies [][]byte) []shardUpdateResult {
	results := make([]shardUpdateResult, len(bodies))
	var wg sync.WaitGroup
	for sid := range bodies {
		sid := sid
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[sid] = rt.postUpdate(ctx, sid, bodies[sid])
		}()
	}
	wg.Wait()
	return results
}

// ownerFor picks the shard owning a venue at p: the shard whose bounds
// need the least area enlargement to cover it (ties break to the
// smaller bounds, then the lower id) — the R-tree ChooseSubtree rule
// applied to shard placement.
func (rt *Router) ownerFor(p geom.Point) int {
	bounds := rt.boundsView()
	best, bestEnl, bestArea := 0, -1.0, -1.0
	for sid, b := range bounds {
		pr := geom.RectFromPoint(p)
		var enl, area float64
		if b.IsEmpty() {
			// A shard with no venues yet: treat placing the first venue
			// as zero enlargement so empty shards absorb new territory.
			enl, area = 0, 0
		} else {
			enl, area = b.Enlargement(pr), b.Area()
		}
		if bestEnl < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = sid, enl, area
		}
	}
	return best
}

// growBounds extends shard sid's bounds view to cover p. Copy-on-write
// under updateMu: readers keep whatever slice they loaded.
func (rt *Router) growBounds(sid int, p geom.Point) {
	old := rt.boundsView()
	if !old[sid].IsEmpty() && old[sid].ContainsPoint(p) {
		return
	}
	fresh := append([]geom.Rect(nil), old...)
	if fresh[sid].IsEmpty() {
		fresh[sid] = geom.RectFromPoint(p)
	} else {
		fresh[sid] = fresh[sid].UnionPoint(p)
	}
	rt.bounds.Store(&fresh)
}

// maxGen folds the generation high-water mark over successful results.
func maxGen(results []shardUpdateResult) uint64 {
	var g uint64
	for _, res := range results {
		if res.err == nil && res.reply.Gen > g {
			g = res.reply.Gen
		}
	}
	return g
}

func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if status, err := rt.decodeBody(w, r, &req); err != nil {
		rt.writeError(w, status, "%v", err)
		return
	}
	rt.updateMu.Lock()
	defer rt.updateMu.Unlock()
	switch req.Op {
	case "add_user", "add_edge", "del_edge":
		rt.broadcastUpdate(w, r.Context(), req)
	case "add_venue":
		rt.placeVenue(w, r.Context(), req)
	case "move_venue":
		rt.moveVenue(w, r.Context(), req)
	default:
		rt.writeError(w, http.StatusBadRequest,
			"unknown op %q (want add_user, add_venue, add_edge, del_edge or move_venue)", req.Op)
	}
}

// broadcastUpdate applies a shared-graph op on every shard; all must
// succeed. A partial failure leaves the cluster inconsistent for that
// op, which the 502 reports loudly — the operator replays the op once
// the failed shard is back (shard updates are idempotent: duplicate
// edges and deletes of missing edges are the only effects of a replay,
// and both are handled).
func (rt *Router) broadcastUpdate(w http.ResponseWriter, ctx context.Context, req updateRequest) {
	body, err := json.Marshal(req)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding shard request: %v", err)
		return
	}
	bodies := make([][]byte, len(rt.backendOf))
	for sid := range bodies {
		bodies[sid] = body
	}
	results := rt.fanoutUpdate(ctx, bodies)
	var ids []int
	for _, res := range results {
		if res.err != nil {
			// A shard-side rejection (409: out-of-range vertex, missing
			// edge) is deterministic across the replicated graph, so the
			// first one speaks for the cluster; transport failures are 502.
			if res.status == http.StatusConflict {
				rt.writeError(w, http.StatusConflict, "%v", res.err)
			} else {
				rt.writeError(w, http.StatusBadGateway, "%v", res.err)
			}
			return
		}
		if res.reply.ID != nil {
			ids = append(ids, *res.reply.ID)
		}
	}
	resp := updateResponse{Gen: maxGen(results)}
	if req.Op == "add_user" {
		if len(ids) != len(results) || !allEqual(ids) {
			rt.writeError(w, http.StatusInternalServerError,
				"cluster id space diverged: add_user returned ids %v", ids)
			return
		}
		resp.ID = &ids[0]
	}
	rt.mUpdates.Inc()
	rt.writeJSON(w, http.StatusOK, resp)
}

// placeVenue routes add_venue to its owner shard and aligns the id
// space everywhere else with add_user placeholders.
func (rt *Router) placeVenue(w http.ResponseWriter, ctx context.Context, req updateRequest) {
	owner := rt.ownerFor(geom.Pt(req.X, req.Y))
	venueBody, err := json.Marshal(updateRequest{Op: "add_venue", X: req.X, Y: req.Y})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding shard request: %v", err)
		return
	}
	userBody, err := json.Marshal(updateRequest{Op: "add_user"})
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding shard request: %v", err)
		return
	}
	bodies := make([][]byte, len(rt.backendOf))
	for sid := range bodies {
		if sid == owner {
			bodies[sid] = venueBody
		} else {
			bodies[sid] = userBody
		}
	}
	results := rt.fanoutUpdate(ctx, bodies)
	var ids []int
	for _, res := range results {
		if res.err != nil {
			rt.writeError(w, http.StatusBadGateway, "%v", res.err)
			return
		}
		if res.reply.ID == nil {
			rt.writeError(w, http.StatusInternalServerError, "shard %d: add returned no id", res.sid)
			return
		}
		ids = append(ids, *res.reply.ID)
	}
	if !allEqual(ids) {
		rt.writeError(w, http.StatusInternalServerError,
			"cluster id space diverged: add_venue returned ids %v", ids)
		return
	}
	rt.growBounds(owner, geom.Pt(req.X, req.Y))
	rt.mUpdates.Inc()
	rt.writeJSON(w, http.StatusOK, updateResponse{ID: &ids[0], Owner: &owner, Gen: maxGen(results)})
}

// moveVenue broadcasts move_venue; only the owner holds the vertex as a
// venue, the replicas answer 409 which is expected and ignored.
func (rt *Router) moveVenue(w http.ResponseWriter, ctx context.Context, req updateRequest) {
	body, err := json.Marshal(req)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "encoding shard request: %v", err)
		return
	}
	bodies := make([][]byte, len(rt.backendOf))
	for sid := range bodies {
		bodies[sid] = body
	}
	results := rt.fanoutUpdate(ctx, bodies)
	owner := -1
	for _, res := range results {
		switch {
		case res.err == nil:
			owner = res.sid
		case res.status == http.StatusConflict:
			// Not a venue on this shard: the expected non-owner answer.
		default:
			rt.writeError(w, http.StatusBadGateway, "%v", res.err)
			return
		}
	}
	if owner < 0 {
		rt.writeError(w, http.StatusConflict, "vertex %d is not a venue on any shard", req.Vertex)
		return
	}
	rt.growBounds(owner, geom.Pt(req.X, req.Y))
	rt.mUpdates.Inc()
	rt.writeJSON(w, http.StatusOK, updateResponse{Owner: &owner, Gen: maxGen(results)})
}

func allEqual(ids []int) bool {
	for _, id := range ids {
		if id != ids[0] {
			return false
		}
	}
	return true
}
