package router

// Metrics federation: the router scrapes its shards' /metrics
// expositions and aggregates them into rr_cluster_* families on its
// own registry, so one scrape of the router answers cluster-wide
// questions — per-shard p99 (merged from the shards' cumulative
// histogram buckets), scrape staleness, health — without a separate
// metrics pipeline. The same federated snapshot backs GET /v1/cluster,
// the JSON view rrtop polls.
//
// The rr_cluster_* gauge funcs only read the cached snapshot; network
// scraping never runs inside a registry render. Freshness comes from
// the background loop (Config.Federate > 0) or on demand when
// /v1/cluster finds the snapshot stale.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// onDemandMaxAge is the staleness /v1/cluster tolerates before
// triggering a synchronous scrape when no background loop runs.
const onDemandMaxAge = 2 * time.Second

// scrapeTimeout bounds one federation cycle's shard scrapes.
const scrapeTimeout = 2 * time.Second

// shardScrape is one shard's digested /metrics exposition.
type shardScrape struct {
	When     time.Time // zero until the first scrape completes
	Err      string    // scrape or parse failure; zero-valued fields below
	Queries  float64
	Inflight float64
	// CacheHitRatio is rr_cache_hit_ratio, or -1 when the shard runs
	// without a cache.
	CacheHitRatio float64
	P50           float64
	P99           float64
	// Gen is rr_generation, the shard's published dynamic-snapshot
	// generation; 0 for static shards (which never export the gauge).
	Gen     float64
	Buckets metrics.Buckets
	Planner map[string]float64
}

// federator holds the latest federated snapshot. The scrape path is
// serialized by scrapeMu so concurrent /v1/cluster hits share one
// cycle; readers take mu only.
type federator struct {
	mu    sync.Mutex
	stats []shardScrape //lint:guardedby mu

	scrapeMu sync.Mutex
}

func newFederator(n int) *federator {
	return &federator{stats: make([]shardScrape, n)}
}

// get returns shard sid's latest digest.
func (f *federator) get(sid int) shardScrape {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats[sid]
}

// snapshot copies all digests.
func (f *federator) snapshot() []shardScrape {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]shardScrape, len(f.stats))
	copy(out, f.stats)
	return out
}

// age returns the oldest successful scrape's age, or -1 when some
// shard has never been scraped.
func (f *federator) age() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldest := time.Duration(-1)
	for _, s := range f.stats {
		if s.When.IsZero() {
			return -1
		}
		if a := time.Since(s.When); a > oldest {
			oldest = a
		}
	}
	return oldest
}

// federateLoop runs background scrape cycles until Close.
func (rt *Router) federateLoop() {
	defer close(rt.fedDone)
	t := time.NewTicker(rt.cfg.Federate)
	defer t.Stop()
	rt.federateOnce()
	for {
		select {
		case <-t.C:
			rt.federateOnce()
		case <-rt.fedStop:
			return
		}
	}
}

// ensureFederated refreshes the snapshot if it is older than maxAge
// (or was never taken). Concurrent callers share one scrape cycle.
func (rt *Router) ensureFederated(maxAge time.Duration) {
	if a := rt.fed.age(); a >= 0 && a <= maxAge {
		return
	}
	rt.fed.scrapeMu.Lock()
	defer rt.fed.scrapeMu.Unlock()
	if a := rt.fed.age(); a >= 0 && a <= maxAge {
		return // a racing caller already scraped
	}
	rt.federateOnce()
}

// federateOnce scrapes every distinct backend once and digests the
// expositions into per-shard stats. Failures are recorded per shard
// and leave the shard's previous numbers replaced with zeros — the
// staleness and health gauges, not stale values, tell the story.
func (rt *Router) federateOnce() {
	type scraped struct {
		samples []metrics.Sample
		err     error
	}
	distinct := make([]string, 0, len(rt.cfg.Backends))
	seen := make(map[string]bool, len(rt.cfg.Backends))
	for _, url := range rt.backendOf {
		if !seen[url] {
			seen[url] = true
			distinct = append(distinct, url)
		}
	}
	byURL := make(map[string]*scraped, len(distinct))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, url := range distinct {
		url := url
		wg.Add(1)
		go func() {
			defer wg.Done()
			samples, err := rt.scrapeBackend(url)
			mu.Lock()
			byURL[url] = &scraped{samples, err}
			mu.Unlock()
		}()
	}
	wg.Wait()

	now := time.Now()
	fresh := make([]shardScrape, len(rt.backendOf))
	for sid, url := range rt.backendOf {
		res := byURL[url]
		if res.err != nil {
			fresh[sid] = shardScrape{When: now, Err: res.err.Error(), CacheHitRatio: -1}
			continue
		}
		fresh[sid] = digestShard(res.samples, now)
	}
	rt.fed.mu.Lock()
	rt.fed.stats = fresh
	rt.fed.mu.Unlock()
}

// scrapeBackend fetches and parses one backend's /metrics.
func (rt *Router) scrapeBackend(url string) ([]metrics.Sample, error) {
	ctx, cancel := context.WithTimeout(context.Background(), scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s/metrics: %s", url, resp.Status)
	}
	return metrics.ParseProm(resp.Body)
}

// digestShard reduces one parsed exposition to the numbers the
// cluster view carries.
func digestShard(samples []metrics.Sample, now time.Time) shardScrape {
	s := shardScrape{When: now, CacheHitRatio: -1}
	s.Queries, _ = metrics.Value(samples, "rr_queries_total", nil)
	s.Inflight, _ = metrics.Value(samples, "rr_inflight_requests", nil)
	if v, ok := metrics.Value(samples, "rr_cache_hit_ratio", nil); ok {
		s.CacheHitRatio = v
	}
	s.Gen, _ = metrics.Value(samples, "rr_generation", nil)
	if b, err := metrics.HistogramBuckets(samples, "rr_query_seconds", nil); err == nil && b.Count() > 0 {
		s.Buckets = b
		s.P50 = b.Quantile(0.5)
		s.P99 = b.Quantile(0.99)
	}
	for _, sm := range samples {
		if sm.Name == "rr_planner_choice_total" {
			if m := sm.Label("method"); m != "" {
				if s.Planner == nil {
					s.Planner = make(map[string]float64)
				}
				s.Planner[m] += sm.Value
			}
		}
	}
	return s
}

// registerClusterMetrics publishes the federated rr_cluster_* families
// on the router registry. All funcs read the cached snapshot only.
func (rt *Router) registerClusterMetrics() {
	for i := range rt.backendOf {
		i := i
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_cluster_shard_p50_seconds{shard="%d"}`, i),
			"Median shard query latency from the last federated scrape.",
			func() float64 { return rt.fed.get(i).P50 })
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_cluster_shard_p99_seconds{shard="%d"}`, i),
			"99th-percentile shard query latency from the last federated scrape.",
			func() float64 { return rt.fed.get(i).P99 })
		rt.reg.CounterFunc(
			fmt.Sprintf(`rr_cluster_shard_queries_total{shard="%d"}`, i),
			"Shard-reported queries evaluated, from the last federated scrape.",
			func() int64 { return int64(rt.fed.get(i).Queries) })
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_cluster_shard_cache_hit_ratio{shard="%d"}`, i),
			"Shard result-cache hit ratio from the last federated scrape; -1 without a cache.",
			func() float64 { return rt.fed.get(i).CacheHitRatio })
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_cluster_shard_generation{shard="%d"}`, i),
			"Shard-reported dynamic snapshot generation from the last federated scrape; 0 for static shards.",
			func() float64 { return rt.fed.get(i).Gen })
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_cluster_shard_staleness_seconds{shard="%d"}`, i),
			"Age of the shard's last federated scrape; -1 before the first one.",
			func() float64 {
				when := rt.fed.get(i).When
				if when.IsZero() {
					return -1
				}
				return time.Since(when).Seconds()
			})
		rt.reg.GaugeFunc(
			fmt.Sprintf(`rr_cluster_shard_health{shard="%d"}`, i),
			"1 when the shard scrapes cleanly and is not marked down, 0 otherwise.",
			func() float64 {
				s := rt.fed.get(i)
				if s.When.IsZero() || s.Err != "" || rt.health[i].isDown() {
					return 0
				}
				return 1
			})
	}
	rt.reg.GaugeFunc(
		"rr_cluster_max_generation",
		"Highest dynamic snapshot generation across all shards in the last federated scrape.",
		func() float64 {
			var g float64
			for _, s := range rt.fed.snapshot() {
				if s.Gen > g {
					g = s.Gen
				}
			}
			return g
		})
	rt.reg.GaugeFunc(
		"rr_cluster_query_p99_seconds",
		"99th-percentile shard query latency across the whole cluster, merged bucket-for-bucket from every shard's histogram.",
		func() float64 {
			merged := make(metrics.Buckets)
			for _, s := range rt.fed.snapshot() {
				for bound, cum := range s.Buckets {
					merged[bound] += cum
				}
			}
			if merged.Count() == 0 {
				return 0
			}
			return merged.Quantile(0.99)
		})
}

// ---- /v1/cluster ----

// clusterShard is one shard's row in the /v1/cluster view.
type clusterShard struct {
	ID      int    `json:"id"`
	Backend string `json:"backend"`
	// Down reflects the router's passive health breaker.
	Down bool `json:"down"`
	// ScrapeError is the last federation failure, "" on success.
	ScrapeError string `json:"scrape_error,omitempty"`
	// ScrapeAgeMillis is -1 before the first scrape.
	ScrapeAgeMillis int64   `json:"scrape_age_ms"`
	Queries         int64   `json:"queries_total"`
	Inflight        int64   `json:"inflight"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	P50Micros       float64 `json:"p50_micros"`
	P99Micros       float64 `json:"p99_micros"`
	// Gen is the shard's published dynamic snapshot generation; 0 for
	// static shards.
	Gen     uint64           `json:"gen"`
	Planner map[string]int64 `json:"planner,omitempty"`
}

// clusterRouter is the router's own corner of the /v1/cluster view.
type clusterRouter struct {
	Requests   int64   `json:"requests_total"`
	Errors     int64   `json:"errors_total"`
	Hedges     int64   `json:"hedges_total"`
	EarlyExits int64   `json:"early_exits_total"`
	Pruned     int64   `json:"pruned_shards_total"`
	Inflight   int64   `json:"inflight"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	Traces     int64   `json:"traces_total"`
	TracesKept int64   `json:"traces_kept_total"`
}

type clusterResponse struct {
	Shards []clusterShard `json:"shards"`
	Router clusterRouter  `json:"router"`
	// ClusterP99Micros merges every shard's latency histogram.
	ClusterP99Micros float64 `json:"cluster_p99_micros"`
	// MaxGeneration is the highest dynamic snapshot generation across
	// the shard set — rrload's churn mode watches it advance.
	MaxGeneration uint64 `json:"max_generation"`
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	maxAge := rt.cfg.Federate
	if maxAge <= 0 {
		maxAge = onDemandMaxAge
	}
	rt.ensureFederated(maxAge)

	stats := rt.fed.snapshot()
	resp := clusterResponse{Shards: make([]clusterShard, len(stats))}
	merged := make(metrics.Buckets)
	for sid, s := range stats {
		row := clusterShard{
			ID:            sid,
			Backend:       rt.backendOf[sid],
			Down:          rt.health[sid].isDown(),
			ScrapeError:   s.Err,
			Queries:       int64(s.Queries),
			Inflight:      int64(s.Inflight),
			CacheHitRatio: s.CacheHitRatio,
			P50Micros:     s.P50 * 1e6,
			P99Micros:     s.P99 * 1e6,
			Gen:           uint64(s.Gen),
		}
		if row.Gen > resp.MaxGeneration {
			resp.MaxGeneration = row.Gen
		}
		row.ScrapeAgeMillis = -1
		if !s.When.IsZero() {
			row.ScrapeAgeMillis = time.Since(s.When).Milliseconds()
		}
		if len(s.Planner) > 0 {
			row.Planner = make(map[string]int64, len(s.Planner))
			for m, v := range s.Planner {
				row.Planner[m] = int64(v)
			}
		}
		for bound, cum := range s.Buckets {
			merged[bound] += cum
		}
		resp.Shards[sid] = row
	}
	if merged.Count() > 0 {
		resp.ClusterP99Micros = merged.Quantile(0.99) * 1e6
	}
	resp.Router = clusterRouter{
		Requests:   rt.mReqQuery.Value() + rt.mReqBatch.Value(),
		Errors:     rt.mReqErrs.Value(),
		Hedges:     rt.mHedges.Value(),
		EarlyExits: rt.mEarlyExit.Value(),
		Pruned:     rt.mPruned.Value(),
		Inflight:   rt.mInflight.Value(),
		P50Micros:  quantileMicros(rt.mLatency, 0.5),
		P99Micros:  quantileMicros(rt.mLatency, 0.99),
		Traces:     rt.mTraces.Value(),
		TracesKept: rt.mTracesKept.Value(),
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

func quantileMicros(h *metrics.Histogram, q float64) float64 {
	if h.Count() == 0 {
		return 0
	}
	v := h.Quantile(q) * 1e6
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
