package router

import (
	"sync"
	"time"
)

// health tracks one shard's availability from the router's own traffic
// (passive health checking): DownAfter consecutive failures mark the
// shard down for Cooldown. While down, calls are not attempted — the
// partial-failure policy decides what the caller sees instead. After
// the cooldown one trial request is let through (half-open); its
// outcome either closes the breaker or re-arms the cooldown.
type health struct {
	mu        sync.Mutex
	fails     int       //lint:guardedby mu — consecutive failures
	downUntil time.Time //lint:guardedby mu — zero when up
	probing   bool      //lint:guardedby mu — a half-open trial is in flight
	down      bool      //lint:guardedby mu — currently marked down (for the gauge)

	downAfter int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
}

func newHealth(downAfter int, cooldown time.Duration, now func() time.Time) *health {
	if downAfter <= 0 {
		downAfter = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &health{downAfter: downAfter, cooldown: cooldown, now: now}
}

// allow reports whether a request to the shard may proceed. A shard in
// cooldown refuses; once the cooldown elapses exactly one caller gets a
// half-open trial until report settles it.
func (h *health) allow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.down {
		return true
	}
	if h.now().Before(h.downUntil) || h.probing {
		return false
	}
	h.probing = true
	return true
}

// report records a call outcome. Success resets the breaker; failure
// counts toward the mark-down threshold and re-arms the cooldown when
// the shard was half-open or crosses the threshold.
func (h *health) report(ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probing = false
	if ok {
		h.fails = 0
		h.down = false
		h.downUntil = time.Time{}
		return
	}
	h.fails++
	if h.fails >= h.downAfter {
		h.down = true
		h.downUntil = h.now().Add(h.cooldown)
	}
}

// abort releases an in-flight half-open probe without a verdict — the
// call was canceled by the scatter-gather (early exit or client
// disconnect) before the shard could prove itself either way. The down
// state and cooldown deadline stay untouched, so the next allow after
// the (already elapsed) cooldown grants a fresh trial instead of the
// shard staying down forever behind a probe that never reports.
func (h *health) abort() {
	h.mu.Lock()
	h.probing = false
	h.mu.Unlock()
}

// isDown reports the mark-down state (for the gauge and healthz). A
// shard stays "down" through its half-open phase until a success closes
// the breaker.
func (h *health) isDown() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}
