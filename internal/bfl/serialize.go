package bfl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Serialization persists the BFL labels so SpaReach-BFL can reload
// without rebuilding. Queries need the graph for the pruned-DFS
// fallback, so Read takes the (cheaply reconstructible) DAG. Versioned
// little-endian binary:
//
//	magic "RRBF" | version u8 | n u32 | words u32 |
//	hash [n]i32 | out [n*words]u64 | in [n*words]u64 |
//	discover [n]i32 | finish [n]i32

var bflMagic = [4]byte{'R', 'R', 'B', 'F'}

const bflVersion = 1

// WriteTo serializes the index labels. It implements io.WriterTo.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	for _, step := range []any{
		bflMagic, uint8(bflVersion),
		uint32(len(idx.hash)), uint32(idx.words),
		idx.hash, idx.out, idx.in, idx.discover, idx.finish,
	} {
		if err := write(step); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Read deserializes an index written by WriteTo and attaches it to g,
// which must be the same DAG the index was built over (same vertex
// count; reachability answers are undefined otherwise).
func Read(g *graph.Graph, r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic [4]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("bfl: reading magic: %w", err)
	}
	if magic != bflMagic {
		return nil, fmt.Errorf("bfl: bad magic %q", magic)
	}
	var version uint8
	if err := read(&version); err != nil {
		return nil, fmt.Errorf("bfl: reading version: %w", err)
	}
	if version != bflVersion {
		return nil, fmt.Errorf("bfl: unsupported version %d", version)
	}
	var n, words uint32
	if err := read(&n); err != nil {
		return nil, fmt.Errorf("bfl: reading sizes: %w", err)
	}
	if err := read(&words); err != nil {
		return nil, fmt.Errorf("bfl: reading sizes: %w", err)
	}
	if int(n) != g.NumVertices() {
		return nil, fmt.Errorf("bfl: index has %d vertices, graph has %d", n, g.NumVertices())
	}
	if words == 0 || words > 1024 {
		return nil, fmt.Errorf("bfl: implausible filter width %d words", words)
	}
	idx := &Index{
		g:        g,
		words:    int(words),
		hash:     make([]int32, n),
		out:      make([]uint64, int(n)*int(words)),
		in:       make([]uint64, int(n)*int(words)),
		discover: make([]int32, n),
		finish:   make([]int32, n),
	}
	for _, step := range []any{idx.hash, idx.out, idx.in, idx.discover, idx.finish} {
		if err := read(step); err != nil {
			return nil, fmt.Errorf("bfl: reading labels: %w", err)
		}
	}
	return idx, nil
}
