// Package bfl implements the Bloom-Filter Labeling reachability index of
// Su et al. (VLDB 2017), the scheme the paper selects for its
// spatial-first baseline SpaReach-BFL "due to its promising results"
// (§7.1).
//
// Every vertex v of a DAG carries:
//
//   - a DFS interval [Discover, Finish]: if v's interval contains u's,
//     then u is a DFS-tree descendant of v and reachability holds — an
//     O(1) positive test;
//   - L_out(v): a Bloom-filter set over hashed vertex ids summarizing
//     everything reachable *from* v;
//   - L_in(v): the symmetric summary of everything that reaches v.
//
// GReach(v, u) is answered as: positive by interval containment; negative
// whenever L_out(u) ⊄ L_out(v) or L_in(v) ⊄ L_in(u) (a superset of u's
// reachable set must appear inside v's, and dually for ancestors);
// otherwise a DFS from v toward u, pruned by the same two tests at every
// expanded vertex.
package bfl

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/pool"
	"repro/internal/trace"
)

// DefaultBits is the default Bloom-filter width in bits. Su et al. use
// small constant-size filters (s ≈ 160 hash buckets); 256 bits keeps the
// containment test to four word operations.
const DefaultBits = 256

// Index is a BFL reachability index over a DAG.
type Index struct {
	g        *graph.Graph
	words    int
	hash     []int32  // hash[v] = bucket of v in [0, bits)
	out      []uint64 // len n*words; L_out filters
	in       []uint64 // len n*words; L_in filters
	discover []int32  // DFS-tree interval start
	finish   []int32  // DFS-tree interval end (post-order position)
}

// Options configures index construction.
type Options struct {
	// Bits is the Bloom-filter width; 0 means DefaultBits. It is rounded
	// up to a multiple of 64.
	Bits int
	// Seed fixes the hash assignment for reproducible benchmarks.
	Seed int64
	// Parallelism bounds the workers of the filter propagation: 0 or 1
	// keeps the sequential path, n > 1 propagates each topological
	// level with up to n workers. The hash assignment (a sequential
	// RNG) and the interval DFS stay single-threaded — they pin the
	// serialized bytes — and the level-parallel OR-propagation yields
	// the identical filters: each vertex ORs the same finished
	// neighbor filters into its own words.
	Parallelism int
}

// Build constructs the BFL index for the DAG g. It panics if g has a
// cycle; condense strongly connected components first.
func Build(g *graph.Graph, opts Options) *Index {
	bits := opts.Bits
	if bits <= 0 {
		bits = DefaultBits
	}
	words := (bits + 63) / 64
	bits = words * 64
	n := g.NumVertices()

	idx := &Index{
		g:        g,
		words:    words,
		hash:     make([]int32, n),
		out:      make([]uint64, n*words),
		in:       make([]uint64, n*words),
		discover: make([]int32, n),
		finish:   make([]int32, n),
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for v := range idx.hash {
		idx.hash[v] = int32(rng.Intn(bits))
	}

	if p := pool.New(max(opts.Parallelism, 1)); !p.Sequential() {
		// Level-synchronous propagation: vertices of one topological
		// height share no edges, so each ORs its neighbors' finished
		// filters into its own words concurrently. L_out wants children
		// before parents (levels from sinks), L_in the reverse.
		outLevels := graph.LevelsFromSinks(g)
		if outLevels == nil {
			panic("bfl: Build requires a DAG; condense SCCs first")
		}
		p.Levels(outLevels, func(v int32) {
			w := idx.filter(idx.out, int(v))
			w[idx.hash[v]/64] |= 1 << (uint(idx.hash[v]) % 64)
			for _, u := range g.Out(int(v)) {
				orInto(w, idx.filter(idx.out, int(u)))
			}
		})
		p.Levels(graph.LevelsFromSinks(g.Reverse()), func(v int32) {
			w := idx.filter(idx.in, int(v))
			w[idx.hash[v]/64] |= 1 << (uint(idx.hash[v]) % 64)
			for _, u := range g.In(int(v)) {
				orInto(w, idx.filter(idx.in, int(u)))
			}
		})
		idx.buildIntervals()
		return idx
	}

	topo, ok := g.TopoOrder()
	if !ok {
		panic("bfl: Build requires a DAG; condense SCCs first")
	}

	// L_out: children before parents.
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		w := idx.filter(idx.out, int(v))
		w[idx.hash[v]/64] |= 1 << (uint(idx.hash[v]) % 64)
		for _, u := range g.Out(int(v)) {
			orInto(w, idx.filter(idx.out, int(u)))
		}
	}
	// L_in: parents before children.
	for _, v := range topo {
		w := idx.filter(idx.in, int(v))
		w[idx.hash[v]/64] |= 1 << (uint(idx.hash[v]) % 64)
		for _, u := range g.In(int(v)) {
			orInto(w, idx.filter(idx.in, int(u)))
		}
	}

	idx.buildIntervals()
	return idx
}

// filter returns the words of vertex v inside the backing array.
func (idx *Index) filter(backing []uint64, v int) []uint64 {
	return backing[v*idx.words : (v+1)*idx.words]
}

// orInto sets dst |= src.
func orInto(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// subset reports whether a ⊆ b.
func subset(a, b []uint64) bool {
	for i := range a {
		if a[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// buildIntervals runs one DFS over the whole DAG (roots first) and
// records discover/finish numbers; interval containment then certifies
// DFS-tree descendants.
func (idx *Index) buildIntervals() {
	g := idx.g
	n := g.NumVertices()
	visited := make([]bool, n)
	var clock int32
	type frame struct {
		v   int32
		pos int32
	}
	var frames []frame
	dfs := func(root int32) {
		visited[root] = true
		clock++
		idx.discover[root] = clock
		frames = append(frames[:0], frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := g.Out(int(f.v))
			advanced := false
			for int(f.pos) < len(adj) {
				u := adj[f.pos]
				f.pos++
				if !visited[u] {
					visited[u] = true
					clock++
					idx.discover[u] = clock
					frames = append(frames, frame{v: u})
					advanced = true
					break
				}
			}
			if !advanced {
				clock++
				idx.finish[f.v] = clock
				frames = frames[:len(frames)-1]
			}
		}
	}
	for v := 0; v < n; v++ {
		if g.InDegree(v) == 0 && !visited[v] {
			dfs(int32(v))
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			dfs(int32(v))
		}
	}
}

// treeContains reports whether u is a DFS-tree descendant of v.
func (idx *Index) treeContains(v, u int) bool {
	return idx.discover[v] <= idx.discover[u] && idx.finish[u] <= idx.finish[v]
}

// prunable reports whether u is certainly NOT reachable from v, by the
// two Bloom containment tests.
func (idx *Index) prunable(v, u int) bool {
	if !subset(idx.filter(idx.out, u), idx.filter(idx.out, v)) {
		return true
	}
	return !subset(idx.filter(idx.in, v), idx.filter(idx.in, u))
}

// Reach answers GReach(v, u): whether g contains a path from v to u.
func (idx *Index) Reach(v, u int) bool {
	return idx.ReachTraced(v, u, nil)
}

// ReachTraced is Reach with instrumentation: every vertex expanded by
// the pruned-DFS fallback counts as a visited graph vertex (the O(1)
// interval and Bloom tests are free by design and not counted). A nil
// sp makes it exactly Reach.
func (idx *Index) ReachTraced(v, u int, sp *trace.Span) bool {
	if v == u {
		return true
	}
	if idx.treeContains(v, u) {
		return true
	}
	if idx.prunable(v, u) {
		return false
	}
	// Pruned DFS fallback.
	visited := make(map[int32]struct{}, 64)
	return idx.search(int32(v), int32(u), visited, sp)
}

func (idx *Index) search(v, target int32, visited map[int32]struct{}, sp *trace.Span) bool {
	visited[v] = struct{}{}
	sp.IncGraphVisited()
	for _, u := range idx.g.Out(int(v)) {
		if u == target {
			return true
		}
		if _, seen := visited[u]; seen {
			continue
		}
		if idx.treeContains(int(u), int(target)) {
			return true
		}
		if idx.prunable(int(u), int(target)) {
			continue
		}
		if idx.search(u, target, visited, sp) {
			return true
		}
	}
	return false
}

// MemoryBytes returns the index footprint: both filter arrays, the hash
// assignment and the DFS intervals (Table 4 accounting).
func (idx *Index) MemoryBytes() int64 {
	return int64(8*(len(idx.out)+len(idx.in))) +
		int64(4*(len(idx.hash)+len(idx.discover)+len(idx.finish)))
}
