package bfl

import (
	"fmt"

	"repro/internal/graph"
)

// Flat-format codec: the five label columns exposed raw so the flat
// index format can persist them as aligned sections and overlay them
// back without copying.

// Flat returns the label columns and filter width. The slices alias the
// index's storage and must not be mutated.
func (idx *Index) Flat() (words int, hash []int32, out, in []uint64, discover, finish []int32) {
	return idx.words, idx.hash, idx.out, idx.in, idx.discover, idx.finish
}

// FromFlat assembles an index from persisted columns and attaches it to
// g, applying the same validation as Read: the vertex count must match
// the graph and every column must have its exact expected length. The
// slices are adopted, not copied — a mapped load allocates only the
// Index header. Label *values* need no validation: hashes are only used
// at build time, and discover/finish/filters are only compared, so
// corrupt values degrade answers on a mismatched graph but cannot
// panic (and the flat loader only pairs columns with the graph they
// were saved with).
func FromFlat(g *graph.Graph, words int, hash []int32, out, in []uint64, discover, finish []int32) (*Index, error) {
	n := g.NumVertices()
	if words <= 0 || words > 1024 {
		return nil, fmt.Errorf("bfl: implausible filter width %d words", words)
	}
	if len(hash) != n {
		return nil, fmt.Errorf("bfl: %d hashes for %d vertices", len(hash), n)
	}
	if len(out) != n*words || len(in) != n*words {
		return nil, fmt.Errorf("bfl: filter lengths %d/%d, want %d", len(out), len(in), n*words)
	}
	if len(discover) != n || len(finish) != n {
		return nil, fmt.Errorf("bfl: interval lengths %d/%d for %d vertices", len(discover), len(finish), n)
	}
	return &Index{
		g:        g,
		words:    words,
		hash:     hash,
		out:      out,
		in:       in,
		discover: discover,
		finish:   finish,
	}, nil
}
