package bfl

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomDAG(rng *rand.Rand, n, edges int) *graph.Graph {
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestReachMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g, Options{Seed: int64(trial)})
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got := idx.Reach(u, v); got != reach[v] {
					t.Fatalf("trial %d: Reach(%d,%d) = %v, want %v", trial, u, v, got, reach[v])
				}
			}
		}
	}
}

func TestReachSelf(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}})
	idx := Build(g, Options{})
	for v := 0; v < 3; v++ {
		if !idx.Reach(v, v) {
			t.Errorf("Reach(%d,%d) = false", v, v)
		}
	}
}

func TestSmallFilterStillCorrect(t *testing.T) {
	// A tiny Bloom filter saturates and loses pruning power but must
	// never lose correctness (it only adds DFS fallbacks).
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g, Options{Bits: 64, Seed: 1})
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got := idx.Reach(u, v); got != reach[v] {
					t.Fatalf("trial %d: Reach(%d,%d) = %v, want %v", trial, u, v, got, reach[v])
				}
			}
		}
	}
}

func TestChainAndDiamond(t *testing.T) {
	chain := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	idx := Build(chain, Options{})
	if !idx.Reach(0, 4) || idx.Reach(4, 0) || idx.Reach(2, 1) {
		t.Error("chain reachability wrong")
	}

	diamond := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	idx = Build(diamond, Options{})
	if !idx.Reach(0, 3) || idx.Reach(1, 2) || idx.Reach(2, 1) {
		t.Error("diamond reachability wrong")
	}
}

func TestPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cyclic input")
		}
	}()
	Build(graph.FromEdges(2, [][2]int{{0, 1}, {1, 0}}), Options{})
}

func TestMemoryBytesScalesWithBits(t *testing.T) {
	g := graph.FromEdges(10, [][2]int{{0, 1}, {1, 2}})
	small := Build(g, Options{Bits: 64})
	big := Build(g, Options{Bits: 512})
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Errorf("MemoryBytes: 512-bit %d <= 64-bit %d", big.MemoryBytes(), small.MemoryBytes())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := randomDAG(rng, 30, 90)
	a := Build(g, Options{Seed: 7})
	b := Build(g, Options{Seed: 7})
	for v := 0; v < 30; v++ {
		if a.hash[v] != b.hash[v] {
			t.Fatal("same seed produced different hash assignments")
		}
	}
}
