package bfl

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBFLSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g, Options{Seed: int64(trial)})

		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(g, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got.Reach(u, v) != reach[v] {
					t.Fatalf("trial %d: loaded Reach(%d,%d) wrong", trial, u, v)
				}
			}
		}
	}
}

func TestBFLReadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := randomDAG(rng, 20, 50)
	idx := Build(g, Options{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Wrong graph size.
	other := randomDAG(rng, 5, 5)
	if _, err := Read(other, bytes.NewReader(valid)); err == nil {
		t.Error("size mismatch accepted")
	}
	// Corrupt inputs.
	for name, input := range map[string][]byte{
		"empty":     {},
		"bad-magic": append([]byte("NOPE"), valid[4:]...),
		"truncated": valid[:10],
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(g, bytes.NewReader(input)); err == nil {
				t.Error("corrupt input accepted")
			}
		})
	}
}
