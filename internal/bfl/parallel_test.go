package bfl

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestParallelBuildIdentical asserts that the level-parallel filter
// propagation produces byte-identical indexes to the sequential build
// at any worker count.
func TestParallelBuildIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(150)
		g := randomDAG(rng, n, rng.Intn(5*n))
		seq := Build(g, Options{Seed: int64(trial), Parallelism: 1})
		for _, par := range []int{2, 8} {
			got := Build(g, Options{Seed: int64(trial), Parallelism: par})
			var a, b bytes.Buffer
			if _, err := seq.WriteTo(&a); err != nil {
				t.Fatal(err)
			}
			if _, err := got.WriteTo(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("trial %d par %d: serialized BFL indexes differ", trial, par)
			}
		}
	}
}
