package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Regime selects the SCC structure of a generated network, the property
// the paper uses to pick its four datasets (§6.1): Gowalla and WeePlaces
// have all users in a single giant SCC, while Foursquare and Yelp break
// into many components around a partial core.
type Regime int

const (
	// GiantSCC connects all users into one strongly connected component.
	GiantSCC Regime = iota
	// Fragmented keeps only CoreFraction of the users strongly
	// connected; the rest stay in singleton or small components.
	Fragmented
)

// GenConfig parameterizes the synthetic geosocial network generator. The
// generator substitutes for the paper's proprietary check-in dumps; see
// DESIGN.md §3 for the calibration rationale.
type GenConfig struct {
	// Name labels the dataset in reports.
	Name string
	// Users is the number of social vertices.
	Users int
	// Venues is the number of spatial vertices.
	Venues int
	// AvgFriends is the mean number of outgoing friendship edges for a
	// non-hub user. A small fraction of users become hubs with degrees
	// up to MaxFriends so that the paper's query-vertex degree buckets
	// (up to 200+) are populated.
	AvgFriends float64
	// MaxFriends caps hub out-degrees (default 400).
	MaxFriends int
	// AvgCheckins is the mean number of check-in edges per user.
	AvgCheckins float64
	// Regime selects the SCC structure.
	Regime Regime
	// CoreFraction is the fraction of users inside the giant SCC when
	// Regime is Fragmented (default 0.5). Ignored for GiantSCC.
	CoreFraction float64
	// SmallSCCFraction is the fraction of non-core users grouped into
	// small (2–8 vertex) cycles when Regime is Fragmented (default 0.1).
	SmallSCCFraction float64
	// Clusters is the number of spatial clusters ("cities") venues are
	// drawn from (default 32).
	Clusters int
	// ClusterSpread is the Gaussian standard deviation of venue points
	// around their cluster center, in space units (default 2).
	ClusterSpread float64
	// Space is the rectangle venues live in (default [0,100]²).
	Space geom.Rect
	// Seed makes generation deterministic.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxFriends <= 0 {
		c.MaxFriends = 400
	}
	if c.CoreFraction <= 0 || c.CoreFraction > 1 {
		c.CoreFraction = 0.5
	}
	if c.SmallSCCFraction < 0 || c.SmallSCCFraction > 1 {
		c.SmallSCCFraction = 0.1
	}
	if c.Clusters <= 0 {
		c.Clusters = 32
	}
	if c.ClusterSpread <= 0 {
		c.ClusterSpread = 2
	}
	if !c.Space.Valid() || c.Space.Area() == 0 {
		c.Space = geom.NewRect(0, 0, 100, 100)
	}
	return c
}

// Generate builds a synthetic geosocial network. Vertex ids [0, Users)
// are users and [Users, Users+Venues) are venues. It panics on
// non-positive sizes, which is always a configuration error.
func Generate(cfg GenConfig) *Network {
	cfg = cfg.withDefaults()
	if cfg.Users <= 0 || cfg.Venues <= 0 {
		panic(fmt.Sprintf("dataset: Generate needs positive sizes, got %d users / %d venues", cfg.Users, cfg.Venues))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nU, nW := cfg.Users, cfg.Venues
	n := nU + nW

	net := &Network{
		Name:    cfg.Name,
		Spatial: make([]bool, n),
		Points:  make([]geom.Point, n),
	}

	// Venue locations: Zipf-weighted Gaussian clusters inside Space.
	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			cfg.Space.Min.X+rng.Float64()*cfg.Space.Width(),
			cfg.Space.Min.Y+rng.Float64()*cfg.Space.Height(),
		)
	}
	clusterOf := make([]int, nW)
	for i := 0; i < nW; i++ {
		v := nU + i
		c := zipfPick(rng, cfg.Clusters)
		clusterOf[i] = c
		p := geom.Pt(
			centers[c].X+rng.NormFloat64()*cfg.ClusterSpread,
			centers[c].Y+rng.NormFloat64()*cfg.ClusterSpread,
		)
		net.Points[v] = clampPoint(p, cfg.Space)
		net.Spatial[v] = true
	}
	// Venues per cluster, for locality-skewed check-ins.
	venuesByCluster := make([][]int32, cfg.Clusters)
	for i := 0; i < nW; i++ {
		c := clusterOf[i]
		venuesByCluster[c] = append(venuesByCluster[c], int32(nU+i))
	}

	b := graph.NewBuilder(n)

	// SCC scaffolding over the users.
	perm := rng.Perm(nU)
	coreSize := nU
	if cfg.Regime == Fragmented {
		coreSize = int(float64(nU) * cfg.CoreFraction)
		if coreSize < 2 && nU >= 2 {
			coreSize = 2
		}
	}
	// A directed cycle through the core guarantees one SCC.
	for i := 0; i < coreSize; i++ {
		b.AddEdge(perm[i], perm[(i+1)%coreSize])
	}
	// Fragmented regime: group some non-core users into small cycles; the
	// rest stay acyclic sources feeding the core.
	if cfg.Regime == Fragmented {
		i := coreSize
		smallBudget := int(float64(nU-coreSize) * cfg.SmallSCCFraction)
		for smallBudget > 1 && i+1 < nU {
			size := 2 + rng.Intn(7)
			if size > smallBudget {
				size = smallBudget
			}
			if i+size > nU {
				size = nU - i
			}
			if size < 2 {
				break
			}
			for j := 0; j < size; j++ {
				b.AddEdge(perm[i+j], perm[i+(j+1)%size])
			}
			// Tie the small SCC into the core so its members can reach
			// spatial activity beyond their own check-ins.
			b.AddEdge(perm[i], perm[rng.Intn(coreSize)])
			i += size
			smallBudget -= size
		}
		// Remaining users: one-way followers of random earlier users, so
		// they stay singleton SCCs.
		for ; i < nU; i++ {
			if rng.Float64() < 0.8 {
				b.AddEdge(perm[i], perm[rng.Intn(coreSize)])
			}
		}
	}

	// Friendship edges: heavy-tailed out-degrees with explicit hubs so
	// every degree bucket of the paper's workload exists. In the
	// Fragmented regime edges must not create new cycles through
	// non-core users, so a user may only befriend strictly lower-ranked
	// users (core users rank lowest); this keeps the SCC scaffolding
	// intact and matches how peripheral accounts follow a dense core.
	rank := make([]int, nU)
	for i, u := range perm {
		rank[u] = i
	}
	for u := 0; u < nU; u++ {
		deg := friendDegree(rng, cfg)
		for k := 0; k < deg; k++ {
			var t int
			if cfg.Regime == Fragmented {
				limit := rank[u]
				if limit < coreSize {
					limit = coreSize // core users befriend the whole core
				}
				t = perm[rng.Intn(limit)]
			} else {
				t = rng.Intn(nU)
			}
			if t != u {
				b.AddEdge(u, t)
			}
		}
	}

	// Check-ins: users favor venues of their home cluster.
	for u := 0; u < nU; u++ {
		home := rng.Intn(cfg.Clusters)
		count := geometricCount(rng, cfg.AvgCheckins)
		for k := 0; k < count; k++ {
			var venue int32
			local := venuesByCluster[home]
			if len(local) > 0 && rng.Float64() < 0.8 {
				venue = local[rng.Intn(len(local))]
			} else {
				venue = int32(nU + rng.Intn(nW))
			}
			b.AddEdge(u, int(venue))
			net.Checkins++
		}
	}

	net.Graph = b.Build()
	return net
}

// friendDegree samples a user's friendship out-degree: 2% hubs in
// [150, MaxFriends], 8% mid-degree in [50, 150), the rest geometric with
// the configured mean.
func friendDegree(rng *rand.Rand, cfg GenConfig) int {
	switch r := rng.Float64(); {
	case r < 0.02:
		return 150 + rng.Intn(cfg.MaxFriends-150+1)
	case r < 0.10:
		return 50 + rng.Intn(100)
	default:
		return geometricCount(rng, cfg.AvgFriends)
	}
}

// geometricCount samples a non-negative count with the given mean from a
// geometric distribution, capped at 4·mean+10 to bound edge counts.
func geometricCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	count := 0
	cap := int(4*mean) + 10
	for rng.Float64() > p && count < cap {
		count++
	}
	return count
}

// zipfPick returns an index in [0, n) with probability ∝ 1/(i+1).
func zipfPick(rng *rand.Rand, n int) int {
	// Inverse-CDF over harmonic weights; n is small (cluster count).
	h := harmonic(n)
	target := rng.Float64() * h
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / float64(i+1)
		if sum >= target {
			return i
		}
	}
	return n - 1
}

func harmonic(n int) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / float64(i)
	}
	return sum
}

func clampPoint(p geom.Point, r geom.Rect) geom.Point {
	return geom.Pt(
		math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	)
}
