package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

// tinyNetwork builds a small hand-made network: users 0-2, venues 3-4.
func tinyNetwork() *Network {
	g := graph.FromEdges(5, [][2]int{
		{0, 1}, {1, 0}, // user SCC
		{1, 2},
		{0, 3}, {2, 4}, // check-ins
	})
	net := &Network{
		Name:    "tiny",
		Graph:   g,
		Spatial: []bool{false, false, false, true, true},
		Points:  make([]geom.Point, 5),
	}
	net.Points[3] = geom.Pt(10, 10)
	net.Points[4] = geom.Pt(90, 90)
	net.Checkins = 2
	return net
}

func TestNetworkBasics(t *testing.T) {
	net := tinyNetwork()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.NumVertices() != 5 || net.NumSpatial() != 2 || net.NumUsers() != 3 {
		t.Error("counts wrong")
	}
	space := net.Space()
	if space != geom.NewRect(10, 10, 90, 90) {
		t.Errorf("Space = %v", space)
	}
}

func TestValidateRejectsInconsistent(t *testing.T) {
	net := tinyNetwork()
	net.Spatial = net.Spatial[:3]
	if net.Validate() == nil {
		t.Error("short Spatial accepted")
	}
	net = tinyNetwork()
	net.Points = nil
	if net.Validate() == nil {
		t.Error("nil Points accepted")
	}
	if (&Network{}).Validate() == nil {
		t.Error("nil graph accepted")
	}
}

func TestComputeStats(t *testing.T) {
	s := tinyNetwork().ComputeStats()
	if s.Users != 3 || s.Venues != 2 || s.Checkins != 2 {
		t.Errorf("stats: %+v", s)
	}
	if s.SCCs != 4 { // {0,1}, {2}, {3}, {4}
		t.Errorf("SCCs = %d, want 4", s.SCCs)
	}
	if s.LargestSCC != 2 {
		t.Errorf("LargestSCC = %d, want 2", s.LargestSCC)
	}
}

func TestPrepare(t *testing.T) {
	net := tinyNetwork()
	p := Prepare(net)
	if p.NumComponents() != 4 {
		t.Fatalf("NumComponents = %d", p.NumComponents())
	}
	if p.CompOf(0) != p.CompOf(1) || p.CompOf(0) == p.CompOf(2) {
		t.Error("component assignment wrong")
	}
	// The venue components carry their points; the user components none.
	c3, c4 := p.CompOf(3), p.CompOf(4)
	if !p.HasSpatial[c3] || !p.HasSpatial[c4] {
		t.Error("venue components lack spatial members")
	}
	if p.HasSpatial[p.CompOf(0)] {
		t.Error("user SCC has spatial members")
	}
	if p.CompMBR[c3] != geom.RectFromPoint(geom.Pt(10, 10)) {
		t.Errorf("CompMBR = %v", p.CompMBR[c3])
	}
	if !p.DAG.IsDAG() {
		t.Error("prepared graph not a DAG")
	}
}

func TestPrepareSpatialSCC(t *testing.T) {
	// A cycle that includes two spatial vertices: the component MBR must
	// cover both points and list both members.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	net := &Network{
		Name:    "spatial-scc",
		Graph:   g,
		Spatial: []bool{false, true, true},
		Points:  []geom.Point{{}, geom.Pt(0, 0), geom.Pt(4, 2)},
	}
	p := Prepare(net)
	if p.NumComponents() != 1 {
		t.Fatalf("NumComponents = %d", p.NumComponents())
	}
	if len(p.SpatialMembers[0]) != 2 {
		t.Errorf("SpatialMembers = %v", p.SpatialMembers[0])
	}
	if p.CompMBR[0] != geom.NewRect(0, 0, 4, 2) {
		t.Errorf("CompMBR = %v", p.CompMBR[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := Generate(GenConfig{Name: "rt test", Users: 50, Venues: 30, AvgFriends: 3, AvgCheckins: 2, Seed: 5})
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != net.Name || got.Checkins != net.Checkins {
		t.Error("metadata lost")
	}
	if got.NumVertices() != net.NumVertices() || got.NumEdges() != net.NumEdges() {
		t.Fatal("sizes changed")
	}
	for v := 0; v < net.NumVertices(); v++ {
		if got.Spatial[v] != net.Spatial[v] {
			t.Fatalf("Spatial[%d] changed", v)
		}
		if net.Spatial[v] && got.Points[v] != net.Points[v] {
			t.Fatalf("Points[%d] changed", v)
		}
	}
	net.Graph.Edges(func(u, v int) {
		if !got.Graph.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost", u, v)
		}
	})
}

func TestSaveLoadFile(t *testing.T) {
	net := Generate(GenConfig{Name: "file", Users: 10, Venues: 5, AvgFriends: 2, AvgCheckins: 1, Seed: 9})
	path := t.TempDir() + "/net.txt"
	if err := SaveFile(path, net); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != net.NumVertices() {
		t.Error("file round trip lost vertices")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestExtendedGeometries(t *testing.T) {
	net := tinyNetwork()
	net.Extents = make([]geom.Rect, 5)
	net.Extents[3] = geom.NewRect(5, 5, 15, 20)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if !net.HasExtents() {
		t.Error("HasExtents false with one extent set")
	}
	if got := net.GeometryOf(3); got != geom.NewRect(5, 5, 15, 20) {
		t.Errorf("GeometryOf(3) = %v", got)
	}
	if got := net.GeometryOf(4); got != geom.RectFromPoint(geom.Pt(90, 90)) {
		t.Errorf("GeometryOf(4) = %v", got)
	}
	// Space covers the extent, not just the points.
	if s := net.Space(); !s.ContainsRect(geom.NewRect(5, 5, 15, 20)) {
		t.Errorf("Space %v misses the extent", s)
	}
	// Prepared witness semantics.
	p := Prepare(net)
	if !p.Witness(3, geom.NewRect(14, 18, 30, 30)) {
		t.Error("intersecting region not a witness")
	}
	if p.Witness(3, geom.NewRect(16, 21, 30, 30)) {
		t.Error("disjoint region is a witness")
	}
	if !p.Witness(4, geom.NewRect(80, 80, 95, 95)) {
		t.Error("point witness broken")
	}

	// Validation failures.
	net.Extents[0] = geom.NewRect(1, 1, 2, 2) // non-spatial vertex
	if net.Validate() == nil {
		t.Error("extent on social vertex accepted")
	}
	net.Extents[0] = geom.Rect{}
	net.Extents = net.Extents[:2]
	if net.Validate() == nil {
		t.Error("short Extents accepted")
	}
}

func TestSaveLoadExtents(t *testing.T) {
	net := tinyNetwork()
	net.Extents = make([]geom.Rect, 5)
	net.Extents[4] = geom.NewRect(80, 80, 99, 95)
	var buf bytes.Buffer
	if err := Save(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.GeometryOf(4) != geom.NewRect(80, 80, 99, 95) {
		t.Errorf("extent lost: %v", got.GeometryOf(4))
	}
	if got.GeometryOf(3) != geom.RectFromPoint(geom.Pt(10, 10)) {
		t.Error("point vertex corrupted")
	}
	if got.Points[4] != geom.Pt(89.5, 87.5) {
		t.Errorf("center = %v", got.Points[4])
	}
}

func TestLoadGeometryDirectiveErrors(t *testing.T) {
	cases := map[string]string{
		"g-before-vertices": "geosocial 1\ng 0 1 2 3 4\n",
		"g-short":           "geosocial 1\nvertices 2\ng 0 1 2 3\n",
		"g-oob":             "geosocial 1\nvertices 2\ng 9 1 2 3 4\n",
		"g-bad-coords":      "geosocial 1\nvertices 2\ng 0 a b c d\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(input)); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
}

func TestLoadRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad-header":        "geosocial 2\nvertices 1\n",
		"p-before-vertices": "geosocial 1\np 0 1 2\n",
		"e-before-vertices": "geosocial 1\ne 0 1\n",
		"vertex-oob":        "geosocial 1\nvertices 2\np 5 1 2\n",
		"edge-oob":          "geosocial 1\nvertices 2\ne 0 7\n",
		"bad-coords":        "geosocial 1\nvertices 2\np 0 x y\n",
		"bad-int":           "geosocial 1\nvertices two\n",
		"short-p":           "geosocial 1\nvertices 2\np 0 1\n",
		"short-e":           "geosocial 1\nvertices 2\ne 0\n",
		"unknown":           "geosocial 1\nvertices 2\nq 1 2\n",
		"no-vertices":       "geosocial 1\nname x\n",
		"negative-count":    "geosocial 1\nvertices -4\n",
		"name-no-value":     "geosocial 1\nname\nvertices 1\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(input)); err == nil {
				t.Errorf("malformed input accepted: %q", input)
			}
		})
	}
}

func TestLoadAcceptsCommentsAndBlankLines(t *testing.T) {
	input := `
# a comment
geosocial 1

name demo net
vertices 3
# the venue
p 2 1.5 2.5
e 0 1
e 1 2
`
	net, err := Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "demo net" || net.NumVertices() != 3 || !net.Spatial[2] {
		t.Errorf("parsed network wrong: %+v", net)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Users: 100, Venues: 50, AvgFriends: 4, AvgCheckins: 3, Seed: 42})
	b := Generate(GenConfig{Users: 100, Venues: 50, AvgFriends: 4, AvgCheckins: 3, Seed: 42})
	if a.NumEdges() != b.NumEdges() || a.Checkins != b.Checkins {
		t.Error("same seed, different network")
	}
	c := Generate(GenConfig{Users: 100, Venues: 50, AvgFriends: 4, AvgCheckins: 3, Seed: 43})
	if a.NumEdges() == c.NumEdges() && a.Checkins == c.Checkins {
		t.Log("different seeds produced equal counts (possible but unlikely)")
	}
}

func TestGenerateGiantSCCRegime(t *testing.T) {
	net := Generate(GenConfig{Users: 200, Venues: 100, AvgFriends: 3, AvgCheckins: 2, Regime: GiantSCC, Seed: 7})
	stats := net.ComputeStats()
	if stats.LargestSCC != 200 {
		t.Errorf("giant regime: largest SCC %d, want all 200 users", stats.LargestSCC)
	}
	// Venues are sinks: every SCC beyond the giant one is a singleton.
	if stats.SCCs != 101 {
		t.Errorf("SCCs = %d, want 101", stats.SCCs)
	}
}

func TestGenerateFragmentedRegime(t *testing.T) {
	net := Generate(GenConfig{
		Users: 400, Venues: 100, AvgFriends: 3, AvgCheckins: 2,
		Regime: Fragmented, CoreFraction: 0.5, Seed: 11,
	})
	stats := net.ComputeStats()
	if stats.LargestSCC < 200 || stats.LargestSCC > 260 {
		t.Errorf("core SCC size %d, want ≈200", stats.LargestSCC)
	}
	if stats.SCCs < 150 {
		t.Errorf("too few SCCs (%d) for a fragmented network", stats.SCCs)
	}
}

func TestGenerateDegreeBucketsPopulated(t *testing.T) {
	net := Generate(GenConfig{Users: 2000, Venues: 500, AvgFriends: 6, AvgCheckins: 3, Seed: 13})
	buckets := make(map[int]int)
	for v := 0; v < 2000; v++ {
		d := net.Graph.OutDegree(v)
		switch {
		case d >= 200:
			buckets[200]++
		case d >= 150:
			buckets[150]++
		case d >= 100:
			buckets[100]++
		case d >= 50:
			buckets[50]++
		case d >= 1:
			buckets[1]++
		}
	}
	for _, lo := range []int{1, 50, 100, 150, 200} {
		if buckets[lo] == 0 {
			t.Errorf("degree bucket %d+ empty", lo)
		}
	}
}

func TestGeneratePointsInsideSpace(t *testing.T) {
	net := Generate(GenConfig{Users: 50, Venues: 500, AvgFriends: 2, AvgCheckins: 2, Seed: 17})
	space := geom.NewRect(0, 0, 100, 100)
	for v, s := range net.Spatial {
		if s && !space.ContainsPoint(net.Points[v]) {
			t.Fatalf("venue point %v outside space", net.Points[v])
		}
	}
}

func TestGeneratePanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(GenConfig{Users: 0, Venues: 10})
}

func TestPresetsStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("preset generation in -short mode")
	}
	nets := Presets(0.1, 1)
	if len(nets) != 4 {
		t.Fatalf("Presets returned %d networks", len(nets))
	}
	byName := map[string]Stats{}
	for _, n := range nets {
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		byName[n.Name] = n.ComputeStats()
	}
	// Giant-SCC regimes: all users in the largest SCC.
	for _, name := range []string{"gowalla-like", "weeplaces-like"} {
		s := byName[name]
		if s.LargestSCC != s.Users {
			t.Errorf("%s: largest SCC %d != users %d", name, s.LargestSCC, s.Users)
		}
	}
	// Fragmented regimes: strictly between.
	for _, name := range []string{"foursquare-like", "yelp-like"} {
		s := byName[name]
		if s.LargestSCC >= s.Users || s.LargestSCC < s.Users/4 {
			t.Errorf("%s: largest SCC %d of %d users out of regime", name, s.LargestSCC, s.Users)
		}
	}
	// Venue-heavy vs user-heavy calibration.
	if g := byName["gowalla-like"]; g.Venues <= g.Users {
		t.Error("gowalla-like should be venue-heavy")
	}
	if y := byName["yelp-like"]; y.Users <= y.Venues {
		t.Error("yelp-like should be user-heavy")
	}
}

func TestScaledFloor(t *testing.T) {
	if scaled(1000, 0.0001) != 2 {
		t.Error("scaled floor not applied")
	}
	if scaled(1000, 0.5) != 500 {
		t.Error("scaled wrong")
	}
}

func TestGeometricCountMean(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	total := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		total += geometricCount(rng, 5)
	}
	mean := float64(total) / trials
	if mean < 4 || mean > 6 {
		t.Errorf("geometric mean = %g, want ≈5", mean)
	}
	if geometricCount(rng, 0) != 0 {
		t.Error("zero mean should give zero count")
	}
}

func TestZipfPickSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[zipfPick(rng, 10)]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("zipf not skewed: first %d, last %d", counts[0], counts[9])
	}
}
