// Package dataset defines the geosocial network model G = (V, E, P) of
// the paper (§2.1), file I/O for networks, the SCC preparation step that
// turns an arbitrary network into the DAG the reachability indexes need
// (paper §5), and synthetic generators calibrated to the structure of the
// paper's four evaluation datasets (Table 3).
package dataset

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Network is a geosocial network: a directed graph whose vertices may
// carry a point in the plane. Vertices with a point are called spatial
// vertices (venues); the rest are social vertices (users).
type Network struct {
	// Name identifies the dataset in reports.
	Name string
	// Graph is the directed social graph over all vertices.
	Graph *graph.Graph
	// Spatial[v] reports whether v is a spatial vertex.
	Spatial []bool
	// Points[v] is the location of spatial vertex v; meaningless when
	// Spatial[v] is false.
	Points []geom.Point
	// Extents optionally gives spatial vertices a rectangular extent —
	// the paper's footnote 1 generalization to arbitrary geometries.
	// Either nil (all vertices are points) or one entry per vertex,
	// where a zero-valued rectangle means "just the point". When a
	// vertex has an extent, Points[v] holds its center.
	Extents []geom.Rect
	// Checkins counts the user→venue edges recorded when the network was
	// generated or loaded, before deduplication (Table 3 reporting).
	Checkins int
}

// GeometryOf returns the spatial geometry of vertex v: its extent when
// one is set, otherwise the degenerate rectangle of its point.
func (n *Network) GeometryOf(v int) geom.Rect {
	if n.Extents != nil {
		if r := n.Extents[v]; r != (geom.Rect{}) {
			return r
		}
	}
	return geom.RectFromPoint(n.Points[v])
}

// HasExtents reports whether any spatial vertex carries a non-point
// geometry. Engines use the cheaper point-only code paths when false.
func (n *Network) HasExtents() bool {
	for v, s := range n.Spatial {
		if s && n.Extents != nil && n.Extents[v] != (geom.Rect{}) {
			return true
		}
	}
	return false
}

// NumVertices returns |V|.
func (n *Network) NumVertices() int { return n.Graph.NumVertices() }

// NumEdges returns |E| after deduplication.
func (n *Network) NumEdges() int { return n.Graph.NumEdges() }

// NumSpatial returns |P|, the number of spatial vertices.
func (n *Network) NumSpatial() int {
	count := 0
	for _, s := range n.Spatial {
		if s {
			count++
		}
	}
	return count
}

// NumUsers returns the number of social (non-spatial) vertices.
func (n *Network) NumUsers() int { return n.NumVertices() - n.NumSpatial() }

// Space returns the minimum bounding rectangle of all spatial geometries
// in the network — the SPACE the paper's region extents are measured
// against.
func (n *Network) Space() geom.Rect {
	r := geom.EmptyRect()
	for v, s := range n.Spatial {
		if s {
			r = r.Union(n.GeometryOf(v))
		}
	}
	return r
}

// Validate checks structural consistency and returns the first problem
// found, or nil.
func (n *Network) Validate() error {
	if n.Graph == nil {
		return fmt.Errorf("dataset: nil graph")
	}
	nv := n.Graph.NumVertices()
	if len(n.Spatial) != nv {
		return fmt.Errorf("dataset: Spatial has %d entries for %d vertices", len(n.Spatial), nv)
	}
	if len(n.Points) != nv {
		return fmt.Errorf("dataset: Points has %d entries for %d vertices", len(n.Points), nv)
	}
	if n.Extents != nil {
		if len(n.Extents) != nv {
			return fmt.Errorf("dataset: Extents has %d entries for %d vertices", len(n.Extents), nv)
		}
		for v, r := range n.Extents {
			if r == (geom.Rect{}) {
				continue
			}
			if !n.Spatial[v] {
				return fmt.Errorf("dataset: vertex %d has an extent but is not spatial", v)
			}
			if !r.Valid() {
				return fmt.Errorf("dataset: vertex %d has an invalid extent %v", v, r)
			}
		}
	}
	return nil
}

// Stats summarizes a network the way Table 3 does.
type Stats struct {
	Name       string
	Users      int
	Venues     int
	Checkins   int
	Vertices   int
	Edges      int
	Points     int
	SCCs       int
	LargestSCC int
}

// ComputeStats derives the Table 3 row for n.
func (n *Network) ComputeStats() Stats {
	cond := n.Graph.Condense()
	return Stats{
		Name:       n.Name,
		Users:      n.NumUsers(),
		Venues:     n.NumSpatial(),
		Checkins:   n.Checkins,
		Vertices:   n.NumVertices(),
		Edges:      n.NumEdges(),
		Points:     n.NumSpatial(),
		SCCs:       cond.NumComponents(),
		LargestSCC: cond.LargestComponentSize(),
	}
}
