package dataset

// The four presets mirror the structure of the paper's evaluation
// datasets (Table 3) at roughly 1% of their size when scale == 1. The
// calibrated properties are the user/venue ratio, check-in density,
// friendship density and — most importantly — the SCC regime: the
// Gowalla- and WeePlaces-like networks place every user inside one giant
// SCC, while the Foursquare- and Yelp-like networks fragment into many
// components around a partial core (87% resp. 45% of users). See
// DESIGN.md §3 for the substitution rationale.

// scaled returns max(2, round(base·scale)).
func scaled(base int, scale float64) int {
	v := int(float64(base)*scale + 0.5)
	if v < 2 {
		v = 2
	}
	return v
}

// FoursquareLike generates a network mirroring Foursquare's structure:
// user-heavy, ~1.9 users per venue, 87% of users in the largest SCC,
// many residual components.
func FoursquareLike(scale float64, seed int64) *Network {
	return Generate(GenConfig{
		Name:         "foursquare-like",
		Users:        scaled(21200, scale),
		Venues:       scaled(11300, scale),
		AvgFriends:   7,
		AvgCheckins:  2.3,
		Regime:       Fragmented,
		CoreFraction: 0.87,
		Clusters:     40,
		Seed:         seed,
	})
}

// GowallaLike generates a network mirroring Gowalla's structure:
// venue-heavy (≈6.7 venues per user), very dense check-ins, and all
// users inside one giant SCC, so RangeReach cost is dominated by the
// spatial predicate.
func GowallaLike(scale float64, seed int64) *Network {
	return Generate(GenConfig{
		Name:        "gowalla-like",
		Users:       scaled(4100, scale),
		Venues:      scaled(27200, scale),
		AvgFriends:  10,
		AvgCheckins: 87,
		Regime:      GiantSCC,
		Clusters:    48,
		Seed:        seed,
	})
}

// WeeplacesLike generates a network mirroring WeePlaces' structure: an
// extreme venue-to-user ratio with dense check-ins and a single giant
// user SCC. Users are kept at 10% (not 1%) of the original so the
// query-degree buckets stay populated; venues are at ~1%.
func WeeplacesLike(scale float64, seed int64) *Network {
	return Generate(GenConfig{
		Name:        "weeplaces-like",
		Users:       scaled(1600, scale),
		Venues:      scaled(9700, scale),
		AvgFriends:  8,
		AvgCheckins: 48,
		Regime:      GiantSCC,
		Clusters:    24,
		Seed:        seed,
	})
}

// YelpLike generates a network mirroring Yelp's structure: very
// user-heavy (≈13 users per venue), with only 45% of users in the
// largest SCC and over half the components social.
func YelpLike(scale float64, seed int64) *Network {
	return Generate(GenConfig{
		Name:         "yelp-like",
		Users:        scaled(19900, scale),
		Venues:       scaled(1510, scale),
		AvgFriends:   7,
		AvgCheckins:  3.5,
		Regime:       Fragmented,
		CoreFraction: 0.45,
		Clusters:     16,
		Seed:         seed,
	})
}

// Presets returns the four calibrated networks at the given scale, in
// the paper's dataset order.
func Presets(scale float64, seed int64) []*Network {
	return []*Network{
		FoursquareLike(scale, seed),
		GowallaLike(scale, seed+1),
		WeeplacesLike(scale, seed+2),
		YelpLike(scale, seed+3),
	}
}
