package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
)

// The text format for geosocial networks:
//
//	geosocial 1
//	name <label>
//	vertices <n>
//	checkins <count>
//	p <id> <x> <y>                     one line per point vertex
//	g <id> <xmin> <ymin> <xmax> <ymax> spatial vertex with a rectangular
//	                                   extent (paper footnote 1)
//	e <src> <dst>                      one line per directed edge
//
// Lines starting with '#' and blank lines are ignored. The header line
// must come first; `vertices` must precede any p/g/e line.

// Save writes n in the text format.
func Save(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "geosocial 1")
	if n.Name != "" {
		fmt.Fprintf(bw, "name %s\n", n.Name)
	}
	fmt.Fprintf(bw, "vertices %d\n", n.NumVertices())
	fmt.Fprintf(bw, "checkins %d\n", n.Checkins)
	for v, s := range n.Spatial {
		if !s {
			continue
		}
		if n.Extents != nil && n.Extents[v] != (geom.Rect{}) {
			r := n.Extents[v]
			fmt.Fprintf(bw, "g %d %g %g %g %g\n", v, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
			continue
		}
		fmt.Fprintf(bw, "p %d %g %g\n", v, n.Points[v].X, n.Points[v].Y)
	}
	var err error
	n.Graph.Edges(func(u, v int) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "e %d %d\n", u, v)
		}
	})
	if err != nil {
		return fmt.Errorf("dataset: writing edges: %w", err)
	}
	return bw.Flush()
}

// SaveFile writes n to the named file.
func SaveFile(path string, n *Network) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := Save(f, n); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Load reads a network in the text format.
func Load(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)

	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}

	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("dataset: empty input")
	}
	if header != "geosocial 1" {
		return nil, fmt.Errorf("dataset: line %d: unsupported header %q", line, header)
	}

	net := &Network{}
	var b *graph.Builder
	for {
		s, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		switch fields[0] {
		case "name":
			if len(fields) < 2 {
				return nil, fmt.Errorf("dataset: line %d: name needs a value", line)
			}
			net.Name = strings.Join(fields[1:], " ")
		case "vertices":
			n, err := atoiField(fields, 1, line)
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative vertex count", line)
			}
			b = graph.NewBuilder(n)
			net.Spatial = make([]bool, n)
			net.Points = make([]geom.Point, n)
		case "checkins":
			n, err := atoiField(fields, 1, line)
			if err != nil {
				return nil, err
			}
			net.Checkins = n
		case "p":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: p before vertices", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: line %d: want `p id x y`", line)
			}
			id, err := atoiField(fields, 1, line)
			if err != nil {
				return nil, err
			}
			if id < 0 || id >= b.NumVertices() {
				return nil, fmt.Errorf("dataset: line %d: vertex %d out of range", line, id)
			}
			x, err1 := strconv.ParseFloat(fields[2], 64)
			y, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad coordinates", line)
			}
			net.Spatial[id] = true
			net.Points[id] = geom.Pt(x, y)
		case "g":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: g before vertices", line)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("dataset: line %d: want `g id xmin ymin xmax ymax`", line)
			}
			id, err := atoiField(fields, 1, line)
			if err != nil {
				return nil, err
			}
			if id < 0 || id >= b.NumVertices() {
				return nil, fmt.Errorf("dataset: line %d: vertex %d out of range", line, id)
			}
			var c [4]float64
			for i := 0; i < 4; i++ {
				c[i], err = strconv.ParseFloat(fields[2+i], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad coordinates", line)
				}
			}
			r := geom.NewRect(c[0], c[1], c[2], c[3])
			if net.Extents == nil {
				net.Extents = make([]geom.Rect, b.NumVertices())
			}
			net.Spatial[id] = true
			net.Points[id] = r.Center()
			net.Extents[id] = r
		case "e":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: e before vertices", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dataset: line %d: want `e src dst`", line)
			}
			src, err := atoiField(fields, 1, line)
			if err != nil {
				return nil, err
			}
			dst, err := atoiField(fields, 2, line)
			if err != nil {
				return nil, err
			}
			if src < 0 || src >= b.NumVertices() || dst < 0 || dst >= b.NumVertices() {
				return nil, fmt.Errorf("dataset: line %d: edge (%d,%d) out of range", line, src, dst)
			}
			b.AddEdge(src, dst)
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dataset: missing vertices directive")
	}
	net.Graph = b.Build()
	return net, nil
}

// LoadFile reads the named file.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func atoiField(fields []string, i, line int) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("dataset: line %d: missing field %d", line, i)
	}
	n, err := strconv.Atoi(fields[i])
	if err != nil {
		return 0, fmt.Errorf("dataset: line %d: %q is not an integer", line, fields[i])
	}
	return n, nil
}
