package dataset

import (
	"repro/internal/geom"
	"repro/internal/graph"
)

// SCCPolicy selects how the spatial extent of a strongly connected
// component is modeled after condensation (paper §5).
type SCCPolicy int

const (
	// Replicate replaces every super-vertex by the spatial vertices it
	// contains: each member point is indexed individually and inherits
	// the super-vertex's reachability labels. This is the paper's
	// non-MBR variant, the winner of Figure 5.
	Replicate SCCPolicy = iota
	// MBR gives every super-vertex a single geometry: the minimum
	// bounding rectangle of its members' points.
	MBR
)

// String implements fmt.Stringer.
func (p SCCPolicy) String() string {
	if p == MBR {
		return "mbr"
	}
	return "replicate"
}

// Prepared is a network after SCC condensation: the DAG every
// reachability index is built on, plus the spatial information of every
// component under both policies. All RangeReach engines consume a
// Prepared network.
type Prepared struct {
	// Net is the original network.
	Net *Network
	// DAG is the condensation of Net.Graph. Vertex ids are component ids.
	DAG *graph.Graph
	// Comp maps original vertices to component ids.
	Comp []int32
	// Members lists original vertices per component.
	Members [][]int32
	// SpatialMembers lists the spatial original vertices per component
	// (the Replicate policy's per-component point sources).
	SpatialMembers [][]int32
	// CompMBR is the MBR of each component's member points; the empty
	// rectangle for components without spatial members.
	CompMBR []geom.Rect
	// HasSpatial reports whether a component contains a spatial vertex.
	HasSpatial []bool
}

// Prepare condenses the network's strongly connected components and
// derives the per-component spatial information (paper §5). Networks
// that are already DAGs condense to themselves with singleton
// components.
func Prepare(net *Network) *Prepared {
	cond := net.Graph.Condense()
	p := &Prepared{
		Net:            net,
		DAG:            cond.DAG,
		Comp:           cond.Comp,
		Members:        cond.Members,
		SpatialMembers: make([][]int32, len(cond.Members)),
		CompMBR:        make([]geom.Rect, len(cond.Members)),
		HasSpatial:     make([]bool, len(cond.Members)),
	}
	for c, members := range cond.Members {
		mbr := geom.EmptyRect()
		for _, v := range members {
			if net.Spatial[v] {
				p.SpatialMembers[c] = append(p.SpatialMembers[c], v)
				mbr = mbr.Union(net.GeometryOf(int(v)))
			}
		}
		p.CompMBR[c] = mbr
		p.HasSpatial[c] = len(p.SpatialMembers[c]) > 0
	}
	return p
}

// CompOf returns the component id of the original vertex v.
func (p *Prepared) CompOf(v int) int32 { return p.Comp[v] }

// NumComponents returns the number of components (DAG vertices).
func (p *Prepared) NumComponents() int { return len(p.Members) }

// PointOf returns the location of the original spatial vertex v.
func (p *Prepared) PointOf(v int32) geom.Point { return p.Net.Points[v] }

// GeometryOf returns the spatial geometry of the original vertex v.
func (p *Prepared) GeometryOf(v int32) geom.Rect { return p.Net.GeometryOf(int(v)) }

// Witness reports whether the original spatial vertex v's geometry makes
// the region r positive: point containment for point vertices, rectangle
// intersection for extended geometries (paper footnote 1).
func (p *Prepared) Witness(v int32, r geom.Rect) bool {
	if p.Net.Extents != nil {
		if e := p.Net.Extents[v]; e != (geom.Rect{}) {
			return r.Intersects(e)
		}
	}
	return r.ContainsPoint(p.Net.Points[v])
}
