package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens the network parser: arbitrary input must either be
// rejected with an error or produce a structurally valid network that
// round-trips through Save.
func FuzzLoad(f *testing.F) {
	f.Add("geosocial 1\nvertices 3\np 2 1.5 2.5\ne 0 1\ne 1 2\n")
	f.Add("geosocial 1\nname x\nvertices 2\ng 1 0 0 4 4\ne 0 1\n")
	f.Add("geosocial 1\nvertices 0\n")
	f.Add("# comment\n\ngeosocial 1\nvertices 1\np 0 -1e300 1e300\n")
	f.Add("geosocial 2\n")
	f.Add("geosocial 1\nvertices -1\n")
	f.Add("geosocial 1\nvertices 2\ne 0 9\n")

	f.Fuzz(func(t *testing.T, input string) {
		net, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("Load accepted structurally invalid network: %v", verr)
		}
		var buf bytes.Buffer
		if err := Save(&buf, net); err != nil {
			t.Fatalf("Save of loaded network failed: %v", err)
		}
		again, err := Load(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumVertices() != net.NumVertices() || again.NumEdges() != net.NumEdges() ||
			again.NumSpatial() != net.NumSpatial() {
			t.Fatal("round trip changed the network")
		}
	})
}
