package feline

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomDAG(rng *rand.Rand, n, edges int) *graph.Graph {
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestReachMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g)
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got := idx.Reach(u, v); got != reach[v] {
					t.Fatalf("trial %d: Reach(%d,%d) = %v, want %v", trial, u, v, got, reach[v])
				}
			}
		}
	}
}

func TestDominanceIsSoundNegativeFilter(t *testing.T) {
	// Every reachable pair must satisfy dominance in both orders.
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g)
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if u != v && reach[v] && !idx.dominates(int32(u), int32(v)) {
					t.Fatalf("trial %d: reachable pair (%d,%d) not dominated", trial, u, v)
				}
			}
		}
	}
}

func TestCoordinatesArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	g := randomDAG(rng, 60, 150)
	idx := Build(g)
	for _, pos := range [][]int32{idx.x, idx.y} {
		seen := make([]bool, 60)
		for _, p := range pos {
			if p < 0 || p >= 60 || seen[p] {
				t.Fatal("coordinates not a permutation")
			}
			seen[p] = true
		}
	}
}

func TestTwoOrdersDiffer(t *testing.T) {
	// On a graph with parallel branches the opposite tie-breaking must
	// produce different orders — that difference is Feline's pruning
	// power.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	idx := Build(g)
	same := true
	for v := range idx.x {
		if idx.x[v] != idx.y[v] {
			same = false
		}
	}
	if same {
		t.Error("both topological orders identical; no pruning power")
	}
}

func TestPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Build(graph.FromEdges(2, [][2]int{{0, 1}, {1, 0}}))
}

func TestMemoryBytes(t *testing.T) {
	idx := Build(graph.FromEdges(10, [][2]int{{0, 1}}))
	if idx.MemoryBytes() != 80 {
		t.Errorf("MemoryBytes = %d, want 80", idx.MemoryBytes())
	}
}
