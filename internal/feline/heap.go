package feline

// idHeap is a heap of vertex ids, min-first or max-first.
type idHeap struct {
	items []int32
	max   bool
}

func (h *idHeap) Len() int { return len(h.items) }

func (h *idHeap) Less(i, j int) bool {
	if h.max {
		return h.items[i] > h.items[j]
	}
	return h.items[i] < h.items[j]
}

func (h *idHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *idHeap) Push(x any) { h.items = append(h.items, x.(int32)) }

func (h *idHeap) Pop() any {
	v := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return v
}
