// Package feline implements the Feline reachability index — the scheme
// behind the SpaReach-Feline variant of Sarwat and Sun (paper §2.2.1,
// §7.1): every vertex receives coordinates from two topological orders,
// chosen so that as many unreachable pairs as possible are separated by
// coordinate dominance.
//
// If u reaches v then both orders place u strictly before v, so a pair
// that violates dominance in either order is certainly unreachable — an
// O(1) negative. Positives (and dominated-but-unreachable pairs) fall
// back to a DFS pruned by the same test at every expanded vertex.
package feline

import (
	"container/heap"

	"repro/internal/graph"
)

// Index is a Feline reachability index over a DAG.
type Index struct {
	g *graph.Graph
	// x[v] and y[v] are v's positions in the two topological orders.
	x, y []int32
}

// Build constructs the index for the DAG g. It panics if g has a cycle;
// condense strongly connected components first.
func Build(g *graph.Graph) *Index {
	n := g.NumVertices()
	idx := &Index{g: g, x: make([]int32, n), y: make([]int32, n)}

	// First order: Kahn's algorithm popping the smallest vertex id.
	// Second order: popping the largest id. Feline's original heuristic
	// picks the second order to maximize the area under the dominance
	// staircase; opposite tie-breaking is the standard cheap
	// approximation and keeps both orders valid.
	fillTopo(g, idx.x, false)
	fillTopo(g, idx.y, true)
	return idx
}

// fillTopo writes each vertex's position in a topological order into
// pos, popping ready vertices from a min- or max-heap of ids.
func fillTopo(g *graph.Graph, pos []int32, maxFirst bool) {
	n := g.NumVertices()
	indeg := make([]int32, n)
	for v := 0; v < n; v++ {
		indeg[v] = int32(g.InDegree(v))
	}
	h := &idHeap{max: maxFirst}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.Push(h, int32(v))
		}
	}
	next := int32(0)
	for h.Len() > 0 {
		v := heap.Pop(h).(int32)
		pos[v] = next
		next++
		for _, u := range g.Out(int(v)) {
			indeg[u]--
			if indeg[u] == 0 {
				heap.Push(h, u)
			}
		}
	}
	if int(next) != n {
		panic("feline: Build requires a DAG; condense SCCs first")
	}
}

// dominates reports whether u precedes v in both orders — the necessary
// condition for u reaching v.
func (idx *Index) dominates(u, v int32) bool {
	return idx.x[u] < idx.x[v] && idx.y[u] < idx.y[v]
}

// Reach answers GReach(u, v). Reach(v, v) is true.
func (idx *Index) Reach(u, v int) bool {
	if u == v {
		return true
	}
	if !idx.dominates(int32(u), int32(v)) {
		return false
	}
	// Pruned DFS: only expand vertices that still dominate the target.
	visited := make(map[int32]struct{}, 64)
	return idx.search(int32(u), int32(v), visited)
}

func (idx *Index) search(u, target int32, visited map[int32]struct{}) bool {
	visited[u] = struct{}{}
	for _, w := range idx.g.Out(int(u)) {
		if w == target {
			return true
		}
		if _, seen := visited[w]; seen {
			continue
		}
		if !idx.dominates(w, target) {
			continue
		}
		if idx.search(w, target, visited) {
			return true
		}
	}
	return false
}

// MemoryBytes returns the index footprint: two int32 coordinates per
// vertex.
func (idx *Index) MemoryBytes() int64 {
	return int64(4 * (len(idx.x) + len(idx.y)))
}
