package rangereach_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	rangereach "repro"
)

// TestValidateAfterBuild deep-checks every engine the public API can
// build, over both 3DReach spatial backends.
func TestValidateAfterBuild(t *testing.T) {
	net := figure1(t)
	all := append([]rangereach.Method{rangereach.Naive, rangereach.MethodAuto}, rangereach.Methods...)
	all = append(all, rangereach.ExtendedMethods...)
	for _, m := range all {
		idx, err := net.Build(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := idx.Validate(); err != nil {
			t.Errorf("%v: Validate() = %v", m, err)
		}
	}
	for _, backend := range []rangereach.SpatialBackend{rangereach.BackendKDTree, rangereach.BackendGrid} {
		idx, err := net.Build(rangereach.ThreeDReach, rangereach.WithSpatialBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Validate(); err != nil {
			t.Errorf("backend %v: Validate() = %v", backend, err)
		}
	}
}

// TestValidateAfterRoundtrip checks persisted indexes: LoadIndex runs
// Validate internally, and the loaded index passes an explicit call.
func TestValidateAfterRoundtrip(t *testing.T) {
	net := figure1(t)
	for _, m := range []rangereach.Method{
		rangereach.ThreeDReach, rangereach.ThreeDReachRev,
		rangereach.SocReach, rangereach.SpaReachBFL, rangereach.SpaReachINT,
		rangereach.GeoReach, rangereach.MethodAuto,
	} {
		idx := net.MustBuild(m)
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		loaded, err := net.LoadIndex(&buf)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := loaded.Validate(); err != nil {
			t.Errorf("%v: loaded index fails validation: %v", m, err)
		}
	}
}

// TestDynamicValidateRandomized drives a dynamic index through a
// seeded random update sequence, deep-checking after every batch, and
// validates snapshots taken along the way.
func TestDynamicValidateRandomized(t *testing.T) {
	net := figure1(t)
	idx := net.BuildDynamic()
	if err := idx.Validate(); err != nil {
		t.Fatalf("fresh dynamic index: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	var snapshots []*rangereach.DynamicSnapshot
	var edges [][2]int
	var venues []int
	for batch := 0; batch < 20; batch++ {
		for op := 0; op < 25; op++ {
			switch rng.Intn(6) {
			case 0:
				idx.AddUser()
			case 1:
				venues = append(venues, idx.AddVenue(rng.Float64()*100, rng.Float64()*100))
			case 2:
				if len(edges) > 0 {
					i := rng.Intn(len(edges))
					e := edges[i]
					edges[i] = edges[len(edges)-1]
					edges = edges[:len(edges)-1]
					// The same edge may have been inserted twice; a
					// missing-edge error on the second delete is fine.
					_ = idx.DeleteEdge(e[0], e[1])
				}
			case 3:
				if len(venues) > 0 {
					v := venues[rng.Intn(len(venues))]
					if err := idx.MoveVenue(v, rng.Float64()*100, rng.Float64()*100); err != nil {
						t.Fatalf("batch %d: move venue %d: %v", batch, v, err)
					}
				}
			default:
				n := idx.NumVertices()
				u, v := rng.Intn(n), rng.Intn(n)
				// Cycle-closing edges merge components; only out-of-range
				// endpoints error, and these are in range.
				if err := idx.AddEdge(u, v); err != nil {
					t.Fatalf("batch %d: add edge (%d,%d): %v", batch, u, v, err)
				}
				if u != v {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		if err := idx.Validate(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if batch%5 == 0 {
			snapshots = append(snapshots, idx.Snapshot())
		}
	}
	for i, s := range snapshots {
		if err := s.Validate(); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
}

// TestLoadCorrupted feeds systematically corrupted index files to
// LoadIndex: truncations at every byte boundary (covering every
// section boundary) and single-byte flips at every offset. Every case
// must return a wrapped error or a fully validated index — never
// panic.
func TestLoadCorrupted(t *testing.T) {
	net := figure1(t)
	for _, m := range []rangereach.Method{
		rangereach.ThreeDReach, rangereach.SocReach,
		rangereach.SpaReachINT, rangereach.GeoReach, rangereach.MethodAuto,
	} {
		idx := net.MustBuild(m)
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		valid := buf.Bytes()

		load := func(name string, data []byte) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%v/%s: LoadIndex panicked: %v", m, name, r)
				}
			}()
			loaded, err := net.LoadIndex(bytes.NewReader(data))
			if err != nil {
				if !strings.Contains(err.Error(), ":") {
					t.Errorf("%v/%s: unwrapped error %q", m, name, err)
				}
				return
			}
			// Corruption that still decodes must yield a structurally
			// valid index (LoadIndex guarantees it; double-check).
			if err := loaded.Validate(); err != nil {
				t.Errorf("%v/%s: accepted index fails validation: %v", m, name, err)
			}
		}

		for cut := 0; cut < len(valid); cut++ {
			load(fmt.Sprintf("truncate@%d", cut), valid[:cut])
		}
		mutant := make([]byte, len(valid))
		for off := 0; off < len(valid); off++ {
			copy(mutant, valid)
			mutant[off] ^= 0x41
			load(fmt.Sprintf("flip@%d", off), mutant)
		}
		load("empty", nil)
		load("doubled", append(append([]byte(nil), valid...), valid...))
	}
}
