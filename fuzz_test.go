package rangereach_test

import (
	"bytes"
	"testing"

	rangereach "repro"
)

// fuzzNet builds the paper's running example without a testing.T, for
// seeding fuzz corpora from *testing.F.
func fuzzNet() *rangereach.Network {
	b := rangereach.NewNetworkBuilder(12)
	for _, e := range [][2]int{
		{0, 1}, {0, 3}, {0, 9},
		{1, 4}, {1, 11}, {1, 3},
		{2, 8}, {2, 10}, {2, 3},
		{4, 5}, {6, 8}, {8, 5}, {9, 6}, {9, 7}, {11, 7},
	} {
		b.AddEdge(e[0], e[1])
	}
	b.SetPoint(4, 70, 80).SetPoint(7, 80, 60).SetPoint(5, 10, 10).
		SetPoint(8, 20, 90).SetPoint(11, 40, 20)
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	return net
}

// FuzzPersistRoundtrip throws arbitrary bytes at the binary index
// decoder. The invariant: LoadIndex returns a wrapped error or a fully
// validated index — it never panics and never accepts a structurally
// broken index. Seeds are valid saves of each persistable method plus
// truncated prefixes, so the seed-corpus CI run exercises every
// section decoder.
func FuzzPersistRoundtrip(f *testing.F) {
	net := fuzzNet()
	region := rangereach.NewRect(60, 55, 90, 95)
	for _, m := range []rangereach.Method{
		rangereach.ThreeDReach, rangereach.ThreeDReachRev,
		rangereach.SocReach, rangereach.SpaReachBFL, rangereach.SpaReachINT,
		rangereach.GeoReach, rangereach.MethodAuto,
	} {
		idx := net.MustBuild(m)
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			f.Fatalf("%v: %v", m, err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:len(buf.Bytes())/2])
		f.Add(buf.Bytes()[:9])
		// The v1 stream format stays loadable; seed it so both decoders
		// see corpus mutations.
		var v1 bytes.Buffer
		if err := idx.SaveV1(&v1); err != nil {
			f.Fatalf("%v: %v", m, err)
		}
		f.Add(v1.Bytes())
		f.Add(v1.Bytes()[:len(v1.Bytes())/2])
	}
	f.Add([]byte(nil))
	f.Add([]byte("RRIX"))
	f.Add([]byte("RRX2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := net.LoadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted index must be structurally sound and answer
		// queries without panicking.
		if err := idx.Validate(); err != nil {
			t.Fatalf("accepted index fails validation: %v", err)
		}
		idx.RangeReach(0, region)
		idx.RangeReach(2, region)
	})
}

// FuzzRangeReachParity derives a small random geosocial network, a
// vertex and a query region from the fuzz input, builds every interval
// and spatial engine over it, and checks each answer against the
// NaiveBFS ground truth (and each index against the deep validators).
func FuzzRangeReachParity(f *testing.F) {
	f.Add([]byte{5, 1, 2, 0, 1, 1, 2, 2, 3, 3, 4, 0, 2, 20, 20, 80, 80})
	f.Add([]byte{9, 7, 0, 0, 1, 1, 2, 2, 0, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 0, 10, 5, 90, 95})
	f.Add([]byte{3, 200, 50, 0, 1, 1, 2, 2, 0, 0, 0, 100, 100})
	f.Add([]byte{12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		n := 3 + int(data[0])%10
		b := rangereach.NewNetworkBuilder(n)
		// Geometry: every third control byte marks its vertex spatial.
		spatial := 0
		for v := 0; v < n && v+1 < len(data); v++ {
			c := data[v+1]
			if c%3 == 0 {
				b.SetPoint(v, float64(c%100), float64(data[(v+2)%len(data)]%100))
				spatial++
			}
		}
		if spatial == 0 {
			b.SetPoint(n-1, 50, 50)
		}
		// Edges (cycles welcome — the pipeline condenses SCCs).
		for i := n + 1; i+1 < len(data); i += 2 {
			b.AddEdge(int(data[i])%n, int(data[i+1])%n)
		}
		net, err := b.Build()
		if err != nil {
			t.Skip()
		}
		x1 := float64(data[1] % 100)
		y1 := float64(data[2] % 100)
		x2 := x1 + float64(data[3]%50)
		y2 := y1 + float64(data[4]%50)
		regions := []rangereach.Rect{
			rangereach.NewRect(x1, y1, x2, y2),
			rangereach.NewRect(0, 0, 100, 100),
		}

		naive := net.MustBuild(rangereach.Naive)
		methods := append([]rangereach.Method{rangereach.MethodAuto}, rangereach.Methods...)
		for _, m := range methods {
			idx, err := net.Build(m)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			if err := idx.Validate(); err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			for v := 0; v < n; v++ {
				for ri, r := range regions {
					want := naive.RangeReach(v, r)
					if got := idx.RangeReach(v, r); got != want {
						t.Errorf("%v: RangeReach(%d, region %d) = %v, want %v", m, v, ri, got, want)
					}
				}
			}
		}
	})
}
