package rangereach_test

import (
	"testing"

	rangereach "repro"
)

func TestDynamicIndex(t *testing.T) {
	net := figure1(t)
	idx := net.BuildDynamic()
	region := rangereach.NewRect(60, 55, 90, 95)
	if !idx.RangeReach(0, region) || idx.RangeReach(2, region) {
		t.Fatal("dynamic index disagrees with static answers")
	}

	// Vertex c (2) gains a check-in at a brand-new venue inside R: the
	// query flips to true for c and stays false for unrelated k (10).
	venue := idx.AddVenue(75, 70)
	if venue != net.NumVertices() {
		t.Fatalf("AddVenue id = %d, want %d", venue, net.NumVertices())
	}
	if err := idx.AddEdge(2, venue); err != nil {
		t.Fatal(err)
	}
	if !idx.RangeReach(2, region) {
		t.Error("c should reach the new venue")
	}
	if idx.RangeReach(10, region) {
		t.Error("k should not reach anything in R")
	}

	// A new user following c inherits its geosocial reach.
	follower := idx.AddUser()
	if err := idx.AddEdge(follower, 2); err != nil {
		t.Fatal(err)
	}
	if !idx.RangeReach(follower, region) {
		t.Error("follower of c should reach the new venue")
	}
	if idx.NumVertices() != 14 {
		t.Errorf("NumVertices = %d, want 14", idx.NumVertices())
	}
	if idx.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}

	// A cycle-closing edge merges c and the follower into one
	// component instead of erroring; both keep their reach.
	if err := idx.AddEdge(2, follower); err != nil {
		t.Errorf("cycle-closing edge rejected: %v", err)
	}
	if s := idx.UpdateStats(); s.Merges != 1 {
		t.Errorf("Merges = %d after the cycle-closing insert, want 1", s.Merges)
	}
	if !idx.RangeReach(2, region) || !idx.RangeReach(follower, region) {
		t.Error("merged component lost the venue")
	}
	if err := idx.Validate(); err != nil {
		t.Errorf("validate after merge: %v", err)
	}

	// The cycle can be taken apart again: deleting the follow edge
	// splits the component and the follower loses the venue.
	if err := idx.DeleteEdge(follower, 2); err != nil {
		t.Fatal(err)
	}
	if idx.RangeReach(follower, region) {
		t.Error("follower kept the venue after unfollowing")
	}
	if !idx.RangeReach(2, region) {
		t.Error("c lost its own venue after the split")
	}

	// Moving the venue out of R flips c's answer without any graph
	// change; the venue answers at its new location.
	if err := idx.MoveVenue(venue, 5, 5); err != nil {
		t.Fatal(err)
	}
	if idx.RangeReach(2, region) {
		t.Error("c still reaches R after its only venue there moved away")
	}
	if !idx.RangeReach(2, rangereach.NewRect(0, 0, 10, 10)) {
		t.Error("c does not reach the venue's new location")
	}

	if err := idx.AddEdge(0, 99); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := idx.DeleteEdge(0, 99); err == nil {
		t.Error("out-of-range delete accepted")
	}
}

func TestDynamicIndexMatchesStaticRebuild(t *testing.T) {
	// After a batch of updates, a fresh static index over the equivalent
	// network must agree with the dynamic one.
	b := rangereach.NewNetworkBuilder(3).SetName("base")
	b.AddEdge(0, 1)
	b.SetPoint(2, 50, 50)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dyn := net.BuildDynamic()
	v3 := dyn.AddVenue(10, 10)
	if err := dyn.AddEdge(1, v3); err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}

	b2 := rangereach.NewNetworkBuilder(4).SetName("rebuilt")
	b2.AddEdge(0, 1).AddEdge(1, 3).AddEdge(1, 2)
	b2.SetPoint(2, 50, 50).SetPoint(3, 10, 10)
	net2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	static := net2.MustBuild(rangereach.ThreeDReach)

	regions := []rangereach.Rect{
		rangereach.NewRect(0, 0, 20, 20),
		rangereach.NewRect(40, 40, 60, 60),
		rangereach.NewRect(80, 80, 99, 99),
	}
	for v := 0; v < 4; v++ {
		for _, r := range regions {
			if dyn.RangeReach(v, r) != static.RangeReach(v, r) {
				t.Errorf("dynamic and static disagree at v=%d r=%+v", v, r)
			}
		}
	}
}
