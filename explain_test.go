package rangereach_test

import (
	"math/rand"
	"strings"
	"testing"

	rangereach "repro"
)

// explainNetwork is a fuzz-sized synthetic network shared by the parity
// tests (built once; index construction dominates the test time).
func explainNetwork(t testing.TB) *rangereach.Network {
	t.Helper()
	return rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name:        "explain-test",
		Users:       400,
		Venues:      200,
		AvgFriends:  4,
		AvgCheckins: 3,
		Clusters:    6,
		Seed:        42,
	})
}

// explainQueries builds a deterministic mix of query regions: small,
// large, the whole space, and degenerate empty corners.
func explainQueries(net *rangereach.Network, n int, seed int64) []struct {
	V int
	R rangereach.Rect
} {
	rng := rand.New(rand.NewSource(seed))
	space := net.Space()
	w, h := space.MaxX-space.MinX, space.MaxY-space.MinY
	out := make([]struct {
		V int
		R rangereach.Rect
	}, n)
	for i := range out {
		out[i].V = rng.Intn(net.NumVertices())
		switch i % 4 {
		case 0: // small box
			x := space.MinX + rng.Float64()*w
			y := space.MinY + rng.Float64()*h
			out[i].R = rangereach.NewRect(x, y, x+w*0.02, y+h*0.02)
		case 1: // medium box
			x := space.MinX + rng.Float64()*w
			y := space.MinY + rng.Float64()*h
			out[i].R = rangereach.NewRect(x, y, x+w*0.25, y+h*0.25)
		case 2: // whole space: positive for any vertex reaching a venue
			out[i].R = space
		default: // far outside the space: always negative
			out[i].R = rangereach.NewRect(space.MaxX+10, space.MaxY+10, space.MaxX+11, space.MaxY+11)
		}
	}
	return out
}

// TestExplainParityAllMethods is the PR's central invariant: Explain
// must return exactly the boolean RangeReach returns, for every method
// (including the extended SpaReach variants) and both SCC policies.
func TestExplainParityAllMethods(t *testing.T) {
	net := explainNetwork(t)
	queries := explainQueries(net, 60, 7)

	all := append([]rangereach.Method{rangereach.Naive}, rangereach.Methods...)
	all = append(all, rangereach.ExtendedMethods...)
	for _, m := range all {
		idx, err := net.Build(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, q := range queries {
			want := idx.RangeReach(q.V, q.R)
			got, stats := idx.Explain(q.V, q.R)
			if got != want {
				t.Fatalf("%v: Explain(%d, %+v) = %v, RangeReach = %v", m, q.V, q.R, got, want)
			}
			if stats.Method == "" {
				t.Fatalf("%v: empty stats.Method", m)
			}
			if stats.CacheHit {
				t.Fatalf("%v: direct Explain reported a cache hit", m)
			}
		}
	}

	// MBR policy for the methods that support it.
	for _, m := range []rangereach.Method{
		rangereach.ThreeDReach, rangereach.ThreeDReachRev,
		rangereach.SpaReachBFL, rangereach.SpaReachINT,
	} {
		idx, err := net.Build(m, rangereach.WithMBRPolicy())
		if err != nil {
			t.Fatalf("%v/MBR: %v", m, err)
		}
		for _, q := range queries {
			want := idx.RangeReach(q.V, q.R)
			got, _ := idx.Explain(q.V, q.R)
			if got != want {
				t.Fatalf("%v/MBR: Explain(%d, %+v) = %v, RangeReach = %v", m, q.V, q.R, got, want)
			}
		}
	}
}

// TestExplainParityBackends covers the alternative 3D point backends.
func TestExplainParityBackends(t *testing.T) {
	net := explainNetwork(t)
	queries := explainQueries(net, 40, 11)
	for _, b := range []rangereach.SpatialBackend{rangereach.BackendKDTree, rangereach.BackendGrid} {
		idx, err := net.Build(rangereach.ThreeDReach, rangereach.WithSpatialBackend(b))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		for _, q := range queries {
			want := idx.RangeReach(q.V, q.R)
			got, stats := idx.Explain(q.V, q.R)
			if got != want {
				t.Fatalf("%v: Explain(%d, %+v) = %v, RangeReach = %v", b, q.V, q.R, got, want)
			}
			if want && stats.Labels == 0 {
				t.Fatalf("%v: positive query inspected no labels", b)
			}
		}
	}
}

// TestExplainStatsSemantics pins the per-method counter meanings on the
// paper's Figure 1 example, where the expected work is known by hand.
func TestExplainStatsSemantics(t *testing.T) {
	net := figure1(t)
	region := rangereach.NewRect(60, 55, 90, 95) // contains venues 4 and 7

	check := func(m rangereach.Method, f func(t *testing.T, qs rangereach.QueryStats)) {
		t.Run(m.String(), func(t *testing.T) {
			idx, err := net.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			ok, qs := idx.Explain(0, region)
			if !ok {
				t.Fatal("Explain(a, R) = false, want true")
			}
			if qs.Method != m.String() {
				t.Errorf("stats.Method = %q, want %q", qs.Method, m)
			}
			f(t, qs)
		})
	}

	check(rangereach.ThreeDReach, func(t *testing.T, qs rangereach.QueryStats) {
		if qs.Labels == 0 {
			t.Error("3DReach inspected no labels")
		}
		if qs.IndexLeaves == 0 && qs.IndexNodes == 0 {
			t.Error("3DReach visited no index nodes")
		}
		if qs.ReachProbes != 0 || qs.Candidates != 0 || qs.Enumerated != 0 {
			t.Errorf("3DReach reported foreign counters: %+v", qs)
		}
	})
	check(rangereach.SocReach, func(t *testing.T, qs rangereach.QueryStats) {
		if qs.Enumerated == 0 {
			t.Error("SocReach enumerated no descendants")
		}
		if qs.Members == 0 {
			t.Error("SocReach tested no members")
		}
		if qs.IndexNodes != 0 || qs.IndexLeaves != 0 {
			t.Errorf("SocReach touched a spatial index: %+v", qs)
		}
	})
	check(rangereach.SpaReachBFL, func(t *testing.T, qs rangereach.QueryStats) {
		if qs.Candidates == 0 {
			t.Error("SpaReach materialized no candidates")
		}
		if qs.ReachProbes == 0 {
			t.Error("SpaReach issued no reachability probes")
		}
		if qs.ReachProbes > qs.Candidates {
			t.Errorf("probes (%d) > candidates (%d)", qs.ReachProbes, qs.Candidates)
		}
	})
	check(rangereach.GeoReach, func(t *testing.T, qs rangereach.QueryStats) {
		if qs.GraphVisited == 0 {
			t.Error("GeoReach expanded no SPA-Graph vertices")
		}
	})
	check(rangereach.Naive, func(t *testing.T, qs rangereach.QueryStats) {
		if qs.GraphVisited == 0 {
			t.Error("NaiveBFS visited no vertices")
		}
	})
}

// TestExplainDynamicParity covers the updatable engine and its
// snapshots across an update stream.
func TestExplainDynamicParity(t *testing.T) {
	net := explainNetwork(t)
	idx := net.BuildDynamic()
	queries := explainQueries(net, 30, 13)

	step := func(label string) {
		for _, q := range queries {
			want := idx.RangeReach(q.V, q.R)
			got, qs := idx.Explain(q.V, q.R)
			if got != want {
				t.Fatalf("%s: Explain(%d, %+v) = %v, RangeReach = %v", label, q.V, q.R, got, want)
			}
			if want && qs.Labels == 0 {
				t.Fatalf("%s: positive query inspected no labels", label)
			}
		}
		snap := idx.Snapshot()
		for _, q := range queries {
			want := snap.RangeReach(q.V, q.R)
			got, qs := snap.Explain(q.V, q.R)
			if got != want {
				t.Fatalf("%s/snapshot: Explain(%d, %+v) = %v, RangeReach = %v", label, q.V, q.R, got, want)
			}
			if qs.Method != "3DReach-Dynamic" {
				t.Fatalf("%s/snapshot: stats.Method = %q", label, qs.Method)
			}
		}
	}

	step("initial")
	// Grow the network: new users, venues and edges, enough venues to
	// keep a non-empty overlay (below the rebuild threshold).
	rng := rand.New(rand.NewSource(99))
	space := net.Space()
	for i := 0; i < 40; i++ {
		u := idx.AddUser()
		x := space.MinX + rng.Float64()*(space.MaxX-space.MinX)
		y := space.MinY + rng.Float64()*(space.MaxY-space.MinY)
		v := idx.AddVenue(x, y)
		_ = idx.AddEdge(rng.Intn(net.NumVertices()), u)
		_ = idx.AddEdge(u, v)
	}
	step("after-updates")
}

// TestExplainPanicsOutOfRange mirrors RangeReach's slice semantics.
func TestExplainPanicsOutOfRange(t *testing.T) {
	idx := figure1(t).MustBuild(rangereach.ThreeDReach)
	defer func() {
		if recover() == nil {
			t.Error("Explain(-1) did not panic")
		}
	}()
	idx.Explain(-1, rangereach.NewRect(0, 0, 1, 1))
}

// TestQueryStatsString smoke-tests the log rendering.
func TestQueryStatsString(t *testing.T) {
	idx := figure1(t).MustBuild(rangereach.SpaReachBFL)
	_, qs := idx.Explain(0, rangereach.NewRect(60, 55, 90, 95))
	s := qs.String()
	for _, want := range []string{"SpaReach-BFL", "candidates=", "probes="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	qs.CacheHit = true
	if !strings.Contains(qs.String(), "cache-hit") {
		t.Error("String() missing cache-hit marker")
	}
}

// BenchmarkTraceOverhead is the PR's overhead guard: the nil-span path
// (every plain RangeReach) must not measurably regress against the
// instrumented engines, and the traced path documents the cost of
// always-on explanation. Compare disabled vs enabled:
//
//	go test -bench=BenchmarkTraceOverhead -benchtime=2s .
func BenchmarkTraceOverhead(b *testing.B) {
	net := explainNetwork(b)
	queries := explainQueries(net, 64, 5)
	for _, m := range []rangereach.Method{rangereach.ThreeDReach, rangereach.SpaReachBFL} {
		idx, err := net.Build(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String()+"/disabled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				idx.RangeReach(q.V, q.R)
			}
		})
		b.Run(m.String()+"/enabled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				idx.Explain(q.V, q.R)
			}
		})
	}
}
